"""Subgraph-centric BSP substrate: distributed graph, engine, cost model."""

from .cost_model import CostModel
from .distributed import (
    DistributedGraph,
    LocalSubgraph,
    build_distributed_graph,
    build_distributed_graph_legacy,
)
from .engine import BSPEngine, BSPRun, SuperstepStats
from .program import ACCUMULATE, MINIMIZE, ComputeResult, SubgraphProgram

__all__ = [
    "CostModel",
    "DistributedGraph",
    "LocalSubgraph",
    "build_distributed_graph",
    "build_distributed_graph_legacy",
    "BSPEngine",
    "BSPRun",
    "SuperstepStats",
    "ACCUMULATE",
    "MINIMIZE",
    "ComputeResult",
    "SubgraphProgram",
]
