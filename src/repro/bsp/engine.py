"""The subgraph-centric bulk synchronous parallel engine.

This is the simulated stand-in for DRONE (Section IV-B): the graph is
divided into subgraphs, each bound to one worker, and processing is
iterative in supersteps of three stages — computation (each worker runs
its sequential algorithm over its subgraph), communication (messages
flow only between replicas of the same vertex: mirrors push to masters,
masters broadcast combined values back), and synchronization (the
barrier; the slowest worker determines superstep wall time).

Message counts are exact — every replica value transfer is tallied on
the sending and receiving worker — while time is produced by the
deterministic :class:`~repro.bsp.cost_model.CostModel` (see DESIGN.md §3
for why this preserves the paper's comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cost_model import CostModel
from .distributed import DistributedGraph
from .program import ACCUMULATE, MINIMIZE, ComputeResult, SubgraphProgram

__all__ = ["SuperstepStats", "BSPRun", "BSPEngine"]


@dataclass
class SuperstepStats:
    """Per-worker accounting for one superstep (arrays of length p)."""

    work: np.ndarray
    sent: np.ndarray
    received: np.ndarray
    comp_seconds: np.ndarray
    comm_seconds: np.ndarray

    @property
    def wall_seconds(self) -> float:
        """Barrier semantics: the slowest worker sets the pace."""
        return float((self.comp_seconds + self.comm_seconds).max())

    @property
    def delta_c(self) -> float:
        """ΔC_k = max_i(comp+comm) − min_i(comp+comm) (Section V-B)."""
        busy = self.comp_seconds + self.comm_seconds
        return float(busy.max() - busy.min())


@dataclass
class BSPRun:
    """A finished BSP execution with the full per-superstep record."""

    program: str
    partition_method: str
    graph_name: str
    num_workers: int
    supersteps: List[SuperstepStats] = field(default_factory=list)
    values: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Aggregates used by the paper's tables
    # ------------------------------------------------------------------

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Table IV: total messages exchanged during the computation."""
        return int(sum(s.sent.sum() for s in self.supersteps))

    def messages_per_worker(self) -> np.ndarray:
        """Total messages *sent* by each worker across all supersteps."""
        out = np.zeros(self.num_workers, dtype=np.int64)
        for s in self.supersteps:
            out += s.sent
        return out

    @property
    def message_max_mean_ratio(self) -> float:
        """Table V: max/mean of per-worker sent messages."""
        per_worker = self.messages_per_worker().astype(np.float64)
        mean = per_worker.mean()
        if mean == 0:
            return 1.0
        return float(per_worker.max() / mean)

    @property
    def comp(self) -> float:
        """Average per-worker computation seconds, Σ_k Σ_i comp_i^k / p."""
        return float(sum(s.comp_seconds.sum() for s in self.supersteps) / self.num_workers)

    @property
    def comm(self) -> float:
        """Average per-worker communication seconds."""
        return float(sum(s.comm_seconds.sum() for s in self.supersteps) / self.num_workers)

    @property
    def delta_c(self) -> float:
        """ΔC = Σ_k ΔC_k — accumulated synchronization (waiting) time."""
        return float(sum(s.delta_c for s in self.supersteps))

    @property
    def execution_time(self) -> float:
        """Modeled wall time: Σ_k max_i(comp_i^k + comm_i^k)."""
        return float(sum(s.wall_seconds for s in self.supersteps))

    def worker_timeline(self) -> List[List[Tuple[float, float, float]]]:
        """Per worker, per superstep ``(comp, comm, sync)`` second triples.

        Sync is the time the worker waits at the barrier — the Figure 4
        Gantt segments.
        """
        timelines: List[List[Tuple[float, float, float]]] = [
            [] for _ in range(self.num_workers)
        ]
        for s in self.supersteps:
            wall = s.wall_seconds
            for i in range(self.num_workers):
                busy = float(s.comp_seconds[i] + s.comm_seconds[i])
                timelines[i].append(
                    (float(s.comp_seconds[i]), float(s.comm_seconds[i]), wall - busy)
                )
        return timelines


class BSPEngine:
    """Run :class:`SubgraphProgram` instances over a distributed graph.

    Parameters
    ----------
    cost_model:
        Simulated per-operation costs (defaults are calibrated against
        Table II; see :mod:`repro.bsp.cost_model`).
    max_supersteps:
        Safety cap; minimize-mode programs normally terminate on
        quiescence well before this.
    """

    def __init__(self, cost_model: Optional[CostModel] = None, max_supersteps: int = 500):
        self.cost_model = cost_model or CostModel()
        self.max_supersteps = max_supersteps

    def run(self, dgraph: DistributedGraph, program: SubgraphProgram) -> BSPRun:
        """Execute ``program`` to completion and return the full record."""
        if program.mode == MINIMIZE:
            return self._run_minimize(dgraph, program)
        if program.mode == ACCUMULATE:
            return self._run_accumulate(dgraph, program)
        raise ValueError(f"unknown program mode {program.mode!r}")

    # ------------------------------------------------------------------
    # Minimize mode (CC, SSSP, BFS)
    # ------------------------------------------------------------------

    def _run_minimize(self, dgraph: DistributedGraph, program: SubgraphProgram) -> BSPRun:
        p = dgraph.num_workers
        values = [program.initial_values(l) for l in dgraph.locals]
        active = [program.initial_active(l) for l in dgraph.locals]
        run = BSPRun(
            program=program.name,
            partition_method=dgraph.partition_method,
            graph_name=dgraph.graph.name,
            num_workers=p,
        )
        for _ in range(self.max_supersteps):
            work = np.zeros(p)
            sent = np.zeros(p, dtype=np.int64)
            received = np.zeros(p, dtype=np.int64)
            changed: List[np.ndarray] = []
            any_active = any(bool(a.any()) for a in active)
            if not any_active:
                break
            for w, local in enumerate(dgraph.locals):
                if active[w].any():
                    res = program.compute(local, values[w], active[w])
                    work[w] = res.work_units
                    changed.append(res.changed)
                else:
                    changed.append(np.zeros(local.num_vertices, dtype=bool))
                if program.reactivate_changed:
                    active[w] = changed[w].copy()
                else:
                    active[w] = np.zeros(local.num_vertices, dtype=bool)

            # Communication stage 1: changed mirrors push to masters.
            master_dirty = [c & l.is_master for c, l in zip(changed, dgraph.locals)]
            for (w, mw), route in dgraph.up_routes.items():
                sel = changed[w][route.src_index]
                if not sel.any():
                    continue
                src_idx = route.src_index[sel]
                dst_idx = route.dst_index[sel]
                vals = values[w][src_idx]
                n_msgs = int(sel.sum())
                sent[w] += n_msgs
                received[mw] += n_msgs
                better = vals < values[mw][dst_idx]
                if better.any():
                    np.minimum.at(values[mw], dst_idx[better], vals[better])
                    master_dirty[mw][dst_idx[better]] = True
                    active[mw][dst_idx[better]] = True

            # Communication stage 2: dirty masters broadcast to mirrors.
            for (mw, w), route in dgraph.down_routes.items():
                sel = master_dirty[mw][route.src_index]
                if not sel.any():
                    continue
                src_idx = route.src_index[sel]
                dst_idx = route.dst_index[sel]
                vals = values[mw][src_idx]
                n_msgs = int(sel.sum())
                sent[mw] += n_msgs
                received[w] += n_msgs
                better = vals < values[w][dst_idx]
                if better.any():
                    values[w][dst_idx[better]] = vals[better]
                    active[w][dst_idx[better]] = True

            run.supersteps.append(self._stats(work, sent, received))
            if not any(bool(a.any()) for a in active):
                break
        run.values = dgraph.gather_master_values(values, default=0)
        return run

    # ------------------------------------------------------------------
    # Accumulate mode (PageRank)
    # ------------------------------------------------------------------

    def _run_accumulate(self, dgraph: DistributedGraph, program: SubgraphProgram) -> BSPRun:
        p = dgraph.num_workers
        values = [program.initial_values(l) for l in dgraph.locals]
        run = BSPRun(
            program=program.name,
            partition_method=dgraph.partition_method,
            graph_name=dgraph.graph.name,
            num_workers=p,
        )
        for step in range(self.max_supersteps):
            work = np.zeros(p)
            sent = np.zeros(p, dtype=np.int64)
            received = np.zeros(p, dtype=np.int64)
            partials: List[np.ndarray] = []
            send_mask: List[np.ndarray] = []
            for w, local in enumerate(dgraph.locals):
                res = program.compute(local, values[w], None)
                work[w] = res.work_units
                partials.append(res.partials)
                send_mask.append(res.changed)

            # Stage 1: mirrors push partial sums to masters.
            sums = [part.copy() for part in partials]
            for (w, mw), route in dgraph.up_routes.items():
                sel = send_mask[w][route.src_index]
                if not sel.any():
                    continue
                src_idx = route.src_index[sel]
                dst_idx = route.dst_index[sel]
                n_msgs = int(sel.sum())
                sent[w] += n_msgs
                received[mw] += n_msgs
                np.add.at(sums[mw], dst_idx, partials[w][src_idx])

            # Apply at masters, track the global change for convergence.
            global_delta = 0.0
            new_master: List[np.ndarray] = []
            for w, local in enumerate(dgraph.locals):
                new_vals = program.apply(local, values[w], sums[w])
                mask = local.is_master
                global_delta += float(np.abs(new_vals[mask] - values[w][mask]).sum())
                new_master.append(new_vals)
                values[w][mask] = new_vals[mask]

            # Stage 2: masters broadcast the new values to all mirrors.
            for (mw, w), route in dgraph.down_routes.items():
                n_msgs = int(route.src_index.shape[0])
                sent[mw] += n_msgs
                received[w] += n_msgs
                values[w][route.dst_index] = values[mw][route.src_index]

            run.supersteps.append(self._stats(work, sent, received))
            if program.has_converged(step, global_delta):
                break
        run.values = dgraph.gather_master_values(values, default=0.0)
        return run

    # ------------------------------------------------------------------

    def _stats(
        self, work: np.ndarray, sent: np.ndarray, received: np.ndarray
    ) -> SuperstepStats:
        comp = self.cost_model.seconds_per_work_unit * work + self.cost_model.superstep_overhead
        comm = self.cost_model.seconds_per_message * (sent + received).astype(np.float64)
        return SuperstepStats(
            work=work,
            sent=sent,
            received=received,
            comp_seconds=comp,
            comm_seconds=comm,
        )
