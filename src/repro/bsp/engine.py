"""The subgraph-centric bulk synchronous parallel engine.

This is the stand-in for DRONE (Section IV-B): the graph is divided
into subgraphs, each bound to one worker, and processing is iterative
in supersteps of three stages — computation (each worker runs its
sequential algorithm over its subgraph), communication (messages flow
only between replicas of the same vertex: mirrors push to masters,
masters broadcast combined values back), and synchronization (the
barrier; the slowest worker determines superstep wall time).

The engine owns the superstep *orchestration* — sequencing, convergence,
accounting, checkpointing — while both per-superstep stages execute on
a pluggable :mod:`repro.runtime` backend (``serial``, ``thread``,
``process`` or ``socket``), all of which produce bit-identical results.  Each
superstep is ``compute_stage`` → ``exchange_stage`` → convergence
check: the computation stage runs every worker's sequential algorithm,
and the exchange stage runs the replica exchange *in the workers* too,
each worker pulling its inbound replica updates over a route plan the
session builds once per run (see :mod:`repro.runtime.base`).  One loop
serves both program modes and both fresh and resumed runs.

Two clocks are recorded per superstep: real wall-clock per stage (what
this machine and backend actually took — see
``SuperstepStats.real_seconds``) and the deterministic
:class:`~repro.bsp.cost_model.CostModel` accounting, which models the
paper's 4-node cluster and remains authoritative for all paper figures
(see DESIGN.md §3 and the :mod:`repro.runtime` package docstring).
Message counts are exact — every replica value transfer is tallied on
the sending and receiving worker.

Long runs can be made crash-tolerant with superstep-granular
checkpointing (``checkpoint_dir=``/``checkpoint_every=``, resumed via
``run(..., resume_from=dir)``): snapshots are written atomically after
a completed superstep and a resumed run is bit-identical to an
uninterrupted one on every backend — see :mod:`repro.checkpoint`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import monotonic_ns
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..obs import NULL_RECORDER, sample_peak_rss_kb
from .cost_model import CostModel
from .distributed import DistributedGraph
from .program import ACCUMULATE, MINIMIZE, SubgraphProgram

__all__ = ["SuperstepStats", "BSPRun", "BSPEngine"]


@dataclass
class SuperstepStats:
    """Per-worker accounting for one superstep (arrays of length p).

    ``comp_seconds``/``comm_seconds`` are the deterministic cost-model
    clocks; ``real_seconds`` maps stage name (``"compute"``,
    ``"exchange"``, ``"converge"`` — the third key is the coordinator's
    quiescence/convergence checking) to measured wall-clock for this
    superstep on the executing backend.
    """

    work: np.ndarray
    sent: np.ndarray
    received: np.ndarray
    comp_seconds: np.ndarray
    comm_seconds: np.ndarray
    real_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        """Barrier semantics: the slowest worker sets the pace."""
        return float((self.comp_seconds + self.comm_seconds).max())

    @property
    def delta_c(self) -> float:
        """ΔC_k = max_i(comp+comm) − min_i(comp+comm) (Section V-B)."""
        busy = self.comp_seconds + self.comm_seconds
        return float(busy.max() - busy.min())


@dataclass
class BSPRun:
    """A finished BSP execution with the full per-superstep record."""

    program: str
    partition_method: str
    graph_name: str
    num_workers: int
    supersteps: List[SuperstepStats] = field(default_factory=list)
    values: Optional[np.ndarray] = None
    #: name of the runtime backend that executed the superstep stages.
    backend: str = "serial"
    #: superstep boundary this run was resumed from (``None`` = fresh run).
    #: Deterministic results are identical either way; this only records
    #: provenance for reporting.
    resumed_from: Optional[int] = None

    # ------------------------------------------------------------------
    # Aggregates used by the paper's tables
    # ------------------------------------------------------------------

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def total_messages(self) -> int:
        """Table IV: total messages exchanged during the computation."""
        return int(sum(s.sent.sum() for s in self.supersteps))

    def messages_per_worker(self) -> np.ndarray:
        """Total messages *sent* by each worker across all supersteps."""
        out = np.zeros(self.num_workers, dtype=np.int64)
        for s in self.supersteps:
            out += s.sent
        return out

    @property
    def message_max_mean_ratio(self) -> float:
        """Table V: max/mean of per-worker sent messages."""
        per_worker = self.messages_per_worker().astype(np.float64)
        mean = per_worker.mean()
        if mean == 0:
            return 1.0
        return float(per_worker.max() / mean)

    @property
    def comp(self) -> float:
        """Average per-worker computation seconds, Σ_k Σ_i comp_i^k / p."""
        return float(sum(s.comp_seconds.sum() for s in self.supersteps) / self.num_workers)

    @property
    def comm(self) -> float:
        """Average per-worker communication seconds."""
        return float(sum(s.comm_seconds.sum() for s in self.supersteps) / self.num_workers)

    @property
    def delta_c(self) -> float:
        """ΔC = Σ_k ΔC_k — accumulated synchronization (waiting) time."""
        return float(sum(s.delta_c for s in self.supersteps))

    @property
    def execution_time(self) -> float:
        """Modeled wall time: Σ_k max_i(comp_i^k + comm_i^k)."""
        return float(sum(s.wall_seconds for s in self.supersteps))

    # ------------------------------------------------------------------
    # Real wall-clock aggregates (backend benchmarking; the cost-model
    # aggregates above stay authoritative for paper artifacts)
    # ------------------------------------------------------------------

    def real_stage_seconds(self) -> Dict[str, float]:
        """Measured wall-clock summed over supersteps, keyed by stage."""
        totals: Dict[str, float] = {}
        for s in self.supersteps:
            for stage, seconds in s.real_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    @property
    def real_time(self) -> float:
        """Total measured superstep wall-clock (all stages)."""
        return float(sum(self.real_stage_seconds().values()))

    def worker_timeline(self) -> List[List[Tuple[float, float, float]]]:
        """Per worker, per superstep ``(comp, comm, sync)`` second triples.

        Sync is the time the worker waits at the barrier — the Figure 4
        Gantt segments.
        """
        timelines: List[List[Tuple[float, float, float]]] = [
            [] for _ in range(self.num_workers)
        ]
        for s in self.supersteps:
            wall = s.wall_seconds
            for i in range(self.num_workers):
                busy = float(s.comp_seconds[i] + s.comm_seconds[i])
                timelines[i].append(
                    (float(s.comp_seconds[i]), float(s.comm_seconds[i]), wall - busy)
                )
        return timelines


class BSPEngine:
    """Run :class:`SubgraphProgram` instances over a distributed graph.

    Parameters
    ----------
    cost_model:
        Simulated per-operation costs (defaults are calibrated against
        Table II; see :mod:`repro.bsp.cost_model`).
    max_supersteps:
        Safety cap; minimize-mode programs normally terminate on
        quiescence well before this.
    backend:
        Superstep-stage executor: a :class:`repro.runtime.Backend`
        instance, a backend name (``"serial"``, ``"thread"``,
        ``"process"``, ``"socket"``), or ``None`` for the serial
        reference.  Backends
        change wall-clock time only — results and cost-model accounting
        are identical across all of them.
    checkpoint_dir:
        When set, superstep-granular snapshots are written here through
        :mod:`repro.checkpoint` (atomic tmp+rename directories with a
        checksummed manifest), and a resumed run (``run(...,
        resume_from=...)``) is bit-identical to an uninterrupted one.
    checkpoint_every:
        Snapshot cadence in supersteps (boundary ``k`` is snapshotted
        when ``k % checkpoint_every == 0``); a final snapshot is always
        written when the run terminates.
    checkpoint_keep:
        Retain only the newest ``n`` snapshots (``None`` keeps all).
    recorder:
        Optional :class:`repro.obs.TraceRecorder`.  When attached, the
        engine wraps every superstep, stage and convergence check in
        spans, the backend session reports per-worker kernel walls into
        it, and the checkpoint writer records snapshot spans and byte
        counters.  ``None`` (the default) costs nothing per superstep
        and perturbs neither results nor cost-model accounting.
    max_recoveries:
        How many worker-loss events
        (:class:`~repro.runtime.base.WorkerLostError`) the engine may
        absorb per ``run()`` before re-raising.  Recovery requires a
        ``checkpoint_dir`` and a session that supports it (the socket
        backend's spawned-local mode): the engine restores the newest
        fingerprint-valid snapshot onto a freshly respawned worker pool
        via ``push_state`` and replays from that boundary — bit-identical
        to an uninterrupted run, exactly like a manual resume.  The
        default ``0`` keeps worker death fail-fast on every backend.
    """

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        max_supersteps: int = 500,
        backend: Union[None, str, "object"] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        checkpoint_keep: Optional[int] = 2,
        recorder=None,
        max_recoveries: int = 0,
    ):
        self.cost_model = cost_model or CostModel()
        self.max_supersteps = max_supersteps
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.recorder = NULL_RECORDER if recorder is None else recorder
        if max_recoveries < 0:
            raise ValueError(f"max_recoveries must be >= 0, got {max_recoveries}")
        self.max_recoveries = max_recoveries
        if checkpoint_dir is not None:
            # Fail on a bad cadence/retention at construction, not at
            # the first superstep boundary of a long run.
            from ..checkpoint import CheckpointWriter

            CheckpointWriter(checkpoint_dir, every=checkpoint_every, keep=checkpoint_keep)

    def _resolve_backend(self):
        """Materialize the configured backend (lazy import, no cycles)."""
        from ..runtime import Backend, SerialBackend, create_backend

        if self.backend is None:
            return SerialBackend()
        if isinstance(self.backend, str):
            return create_backend(self.backend)
        if not isinstance(self.backend, Backend):
            raise TypeError(
                f"backend must be None, a name, or a repro.runtime.Backend; "
                f"got {type(self.backend).__name__}"
            )
        return self.backend

    def run(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        resume_from: Optional[str] = None,
        warm_values: Optional[np.ndarray] = None,
    ) -> BSPRun:
        """Execute ``program`` to completion and return the full record.

        ``resume_from`` names a checkpoint directory (a root, resuming
        from its newest snapshot, or one specific ``step-NNNNNN``
        snapshot).  The snapshot's fingerprint must match this exact
        run — graph, partition layout, program parameters, cost model —
        or :class:`repro.checkpoint.CheckpointError` is raised; the
        resumed execution is bit-identical to the uninterrupted one on
        every backend.  Fresh and resumed runs execute the *same*
        superstep loop — a resume only restores state and starts the
        loop at the snapshot boundary.

        ``warm_values`` overrides the program's initial *values* with a
        global per-vertex array (length ``|V|``; cast to the program's
        dtype) scattered to every worker through the state API
        (``push_state``), so it works on every backend including
        ``socket``.  Activity/partial arrays keep their cold
        allocation, and the run executes the normal superstep loop from
        superstep 0 — this is the warm-start entry the delta apps ride
        when the previous values live outside the program object.
        Mutually exclusive with ``resume_from`` (a snapshot restores
        the *whole* state, supersteps included).
        """
        if program.mode not in (MINIMIZE, ACCUMULATE):
            raise ValueError(f"unknown program mode {program.mode!r}")
        if warm_values is not None and resume_from is not None:
            raise ValueError(
                "warm_values and resume_from are mutually exclusive: a "
                "snapshot already carries the complete state to restore"
            )
        if warm_values is not None:
            warm_values = np.ascontiguousarray(warm_values, dtype=program.dtype)
            if warm_values.shape != (dgraph.graph.num_vertices,):
                raise ValueError(
                    f"warm_values must have shape ({dgraph.graph.num_vertices},) "
                    f"— one value per global vertex — got {warm_values.shape}"
                )
        backend = self._resolve_backend()
        from ..runtime.base import WorkerLostError

        writer = None
        snapshot = None
        fingerprint = None
        if self.checkpoint_dir is not None or resume_from is not None:
            from ..checkpoint import (
                CheckpointWriter,
                compute_fingerprint,
                load_snapshot,
                verify_fingerprint,
            )

            fingerprint = compute_fingerprint(
                dgraph, program, self.cost_model, self.max_supersteps
            )
            if self.checkpoint_dir is not None:
                writer = CheckpointWriter(
                    self.checkpoint_dir,
                    every=self.checkpoint_every,
                    keep=self.checkpoint_keep,
                    recorder=self.recorder,
                )
            if resume_from is not None:
                snapshot = load_snapshot(resume_from)
                verify_fingerprint(snapshot.fingerprint, fingerprint)
            elif writer is not None:
                # A fresh checkpointed run owns its directory: stale
                # snapshots from a previous run would count toward the
                # retention limit and shadow this run's progress on a
                # later resume.
                from ..checkpoint import clear_snapshots

                clear_snapshots(self.checkpoint_dir)

        with backend.session(dgraph, program) as session:
            if self.recorder.enabled:
                # Post-construction attach keeps the session() signature
                # stable for wrapper backends; sessions default to the
                # null recorder.
                session.attach_recorder(self.recorder)
            run = BSPRun(
                program=program.name,
                partition_method=dgraph.partition_method,
                graph_name=dgraph.graph.name,
                num_workers=dgraph.num_workers,
                backend=session.backend_name,
            )
            done = False
            if snapshot is not None:
                session.push_state(snapshot.arrays)
                run.supersteps = list(snapshot.supersteps)
                run.resumed_from = snapshot.superstep
                done = snapshot.done
            elif warm_values is not None:
                from ..checkpoint.writer import state_arrays
                from ..runtime.base import allocate_state

                arrays = state_arrays(allocate_state(dgraph, program))
                arrays["values"] = [
                    np.ascontiguousarray(warm_values[local.global_ids])
                    for local in dgraph.locals
                ]
                session.push_state(arrays)
            ckpt = _CheckpointHook(writer, fingerprint, session)
            recoveries = 0
            while True:
                try:
                    return self._superstep_loop(
                        dgraph, program, session, run, done, ckpt
                    )
                except WorkerLostError:
                    recovery = self._recovery_snapshot(
                        session, writer, fingerprint, recoveries
                    )
                    if recovery is None:
                        raise
                    recoveries += 1
                    # Respawn the dead workers, then rewind the *whole*
                    # pool — survivors have advanced past the snapshot
                    # boundary; replaying everyone from the same restored
                    # arrays is what keeps the recovered run
                    # bit-identical to an uninterrupted one.
                    with self.recorder.span("recover", cat="recover"):
                        session.recover_workers()
                        session.push_state(recovery.arrays)
                    run.supersteps = list(recovery.supersteps)
                    done = recovery.done

    def _recovery_snapshot(self, session, writer, fingerprint, recoveries):
        """The snapshot to rewind to after a lost worker, or ``None``.

        ``None`` means "don't recover, re-raise": the recovery budget is
        spent, no checkpoint directory is configured, the session cannot
        replace workers (every backend except spawned-local socket), or
        no fingerprint-valid snapshot exists on disk yet (worker death
        before the first checkpoint boundary).
        """
        if (
            recoveries >= self.max_recoveries
            or writer is None
            or self.checkpoint_dir is None
            or not getattr(session, "supports_recovery", False)
        ):
            return None
        from ..checkpoint import (
            CheckpointError,
            list_snapshots,
            load_snapshot,
            verify_fingerprint,
        )

        for path in reversed(list_snapshots(self.checkpoint_dir)):
            try:
                snap = load_snapshot(path)
                verify_fingerprint(snap.fingerprint, fingerprint)
            except CheckpointError:
                continue  # torn or foreign snapshot: try the next-newest
            return snap
        return None

    # ------------------------------------------------------------------
    # The backend-agnostic superstep loop (both modes, fresh and resumed)
    # ------------------------------------------------------------------

    def _superstep_loop(
        self,
        dgraph: DistributedGraph,
        program: SubgraphProgram,
        session,
        run: BSPRun,
        resumed_done: bool,
        ckpt: "_CheckpointHook",
    ) -> BSPRun:
        """Sequence ``compute_stage`` → ``exchange_stage`` → convergence.

        The single loop all executions share: minimize (CC, SSSP, BFS)
        and accumulate (PageRank) mode, fresh and resumed runs.  A
        resumed run enters with restored state and ``run.supersteps``
        pre-filled, so the range simply starts at the snapshot boundary;
        a resumed-*finished* run (``resumed_done``) replays nothing.
        Both stages execute on the backend session — the engine never
        touches replica routes itself.
        """
        minimize = program.mode == MINIMIZE
        rec = session.recorder
        for step in range(run.num_supersteps, self.max_supersteps):
            if resumed_done:
                break
            step_t0 = monotonic_ns()
            # Activity is asked of the *session*, not read out of state
            # arrays: state-owning backends (socket) answer from the
            # activity bits piggybacked on stage replies instead of
            # shipping O(|V|) arrays per check.
            quiescent = minimize and not session.any_active()
            pre_check_ns = monotonic_ns() - step_t0
            if quiescent:
                break  # quiescent before the step: nothing left to do

            t0 = monotonic_ns()
            comp = session.compute_stage(step)
            t1 = monotonic_ns()
            t_compute = (t1 - t0) * 1e-9
            if rec.enabled:
                rec.add("stage.compute", t0, t1, superstep=step)

            t0 = monotonic_ns()
            exchange = session.exchange_stage(step)
            t1 = monotonic_ns()
            t_exchange = (t1 - t0) * 1e-9
            if rec.enabled:
                rec.add("stage.exchange", t0, t1, superstep=step)

            # The convergence check is real coordinator work; the
            # top-of-loop quiescence pre-check of the *same* superstep is
            # attributed here too, so "converge" sums to everything the
            # loop did besides the two stages.
            t0 = monotonic_ns()
            if minimize:
                converged = not session.any_active()
            else:
                converged = program.has_converged(step, exchange.delta)
            t1 = monotonic_ns()
            t_converge = (pre_check_ns + (t1 - t0)) * 1e-9
            if rec.enabled:
                rec.add("converge", t0, t1, superstep=step)
                # Free for in-process backends (pull_state returns the
                # session's own arrays); an explicit per-superstep wire
                # pull for the socket backend — an observability cost
                # paid only under tracing, visible as wire.pull_state.
                self._record_superstep_metrics(rec, exchange, session.pull_state())

            run.supersteps.append(
                self._stats(
                    comp.work,
                    exchange.sent,
                    exchange.received,
                    t_compute,
                    t_exchange,
                    t_converge,
                )
            )
            if converged:
                if rec.enabled:
                    rec.add("superstep", step_t0, monotonic_ns(), superstep=step,
                            cat="superstep")
                break
            ckpt.boundary(run)
            if rec.enabled:
                # Closed after the checkpoint boundary so the snapshot
                # span (if any) nests inside its superstep.
                rec.add("superstep", step_t0, monotonic_ns(), superstep=step,
                        cat="superstep")
        if not resumed_done:
            # A resumed-finished run replayed nothing; its done snapshot
            # is already on disk and need not be rewritten.
            ckpt.finalize(run)
        with rec.span("gather"):
            run.values = dgraph.gather_master_values(
                session.pull_state().values, default=0 if minimize else 0.0
            )
        if rec.enabled:
            rss = sample_peak_rss_kb()
            if rss is not None:
                rec.metrics.gauge("rss.peak_kb").sample(rss)
        return run

    # ------------------------------------------------------------------

    @staticmethod
    def _record_superstep_metrics(rec, exchange, state) -> None:
        """Fold one superstep's tallies into the recorder's metrics.

        Runs once per traced superstep, so it avoids per-element numpy
        scalar conversions: one ``tolist`` per tally array and
        ``count_nonzero`` (cheaper than ``.sum()`` on bool arrays) keep
        the traced path inside the bench_runtime overhead budget.  Peak
        RSS is *not* sampled here — it is a high-water mark, so the
        single end-of-run sample in the loop equals the max of
        per-superstep samples.
        """
        metrics = rec.metrics
        sent = metrics.counter("messages.sent")
        received = metrics.counter("messages.received")
        changed = metrics.counter("vertices.changed")
        sent_counts = exchange.sent.tolist()
        received_counts = exchange.received.tolist()
        for w, arr in enumerate(state.changed):
            sent.inc(sent_counts[w], worker=w)
            received.inc(received_counts[w], worker=w)
            changed.inc(int(np.count_nonzero(arr)), worker=w)
        if state.active is not None:
            metrics.gauge("vertices.active").sample(
                float(sum(int(np.count_nonzero(a)) for a in state.active))
            )

    def _stats(
        self,
        work: np.ndarray,
        sent: np.ndarray,
        received: np.ndarray,
        t_compute: float,
        t_exchange: float,
        t_converge: float,
    ) -> SuperstepStats:
        comp = self.cost_model.seconds_per_work_unit * work + self.cost_model.superstep_overhead
        comm = self.cost_model.seconds_per_message * (sent + received).astype(np.float64)
        return SuperstepStats(
            work=work,
            sent=sent,
            received=received,
            comp_seconds=comp,
            comm_seconds=comm,
            real_seconds={
                "compute": t_compute,
                "exchange": t_exchange,
                "converge": t_converge,
            },
        )


class _CheckpointHook:
    """Glue between the superstep loop and the checkpoint writer.

    ``boundary`` runs after every completed superstep (snapshot only on
    the configured cadence); ``finalize`` runs once when the loop
    terminates and always snapshots, marked ``done`` so a resume of a
    finished run replays nothing.  With no writer configured both are
    no-ops.
    """

    def __init__(self, writer, fingerprint, session):
        self._writer = writer
        self._fingerprint = fingerprint
        self._session = session

    def _write(self, run: "BSPRun", done: bool) -> None:
        self._writer.maybe_write(
            superstep=run.num_supersteps,
            done=done,
            fingerprint=self._fingerprint,
            meta={
                "program": run.program,
                "partition_method": run.partition_method,
                "graph_name": run.graph_name,
                "num_workers": run.num_workers,
                "backend": run.backend,
            },
            state=self._session.pull_state(),
            supersteps=run.supersteps,
        )

    def boundary(self, run: "BSPRun") -> None:
        if self._writer is not None:
            self._write(run, done=False)

    def finalize(self, run: "BSPRun") -> None:
        if self._writer is not None:
            self._write(run, done=True)
