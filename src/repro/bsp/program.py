"""The subgraph-centric programming interface ("think like a graph").

A :class:`SubgraphProgram` expresses a graph algorithm the way the
subgraph-centric BSP model expects (Section IV-B): during the
computation stage each worker runs a *sequential* algorithm over its
whole local subgraph (typically to local convergence), and during the
communication stage only replicated vertices exchange values.

Two synchronization modes cover the paper's three applications:

* ``minimize`` — values are merged across replicas with ``min`` (CC,
  SSSP, BFS).  ``compute`` improves local values in place and reports
  which vertices changed; the engine pushes changed mirror values to
  masters, combines, and broadcasts winners back.
* ``accumulate`` — per-superstep partial values are *summed* across
  replicas at the master, which then applies a rescaling rule
  (PageRank).  ``compute`` returns the partials, ``apply`` turns the
  combined sums into new vertex values.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .distributed import LocalSubgraph

__all__ = ["ComputeResult", "SubgraphProgram", "MINIMIZE", "ACCUMULATE"]

MINIMIZE = "minimize"
ACCUMULATE = "accumulate"


@dataclass
class ComputeResult:
    """Outcome of one worker's computation stage.

    Attributes
    ----------
    changed:
        Boolean mask over local vertices whose value changed (minimize
        mode) or whose partial is worth sending (accumulate mode).
    work_units:
        Edge operations performed, consumed by the cost model.
    partials:
        Accumulate mode only: per-local-vertex partial values.
    """

    changed: np.ndarray
    work_units: float
    partials: Optional[np.ndarray] = None


class SubgraphProgram(abc.ABC):
    """Base class for subgraph-centric applications."""

    #: ``MINIMIZE`` or ``ACCUMULATE``.
    mode: str = MINIMIZE
    #: dtype of the per-vertex value array.
    dtype = np.float64
    #: human-readable name used in reports.
    name: str = "app"
    #: When ``True`` the engine re-activates vertices the *local* compute
    #: changed (needed by vertex-centric single-sweep programs, which do
    #: not reach a local fixpoint within one superstep).
    reactivate_changed: bool = False

    @abc.abstractmethod
    def initial_values(self, local: LocalSubgraph) -> np.ndarray:
        """Per-local-vertex initial values for worker ``local``."""

    def initial_active(self, local: LocalSubgraph) -> np.ndarray:
        """Initially active local vertices (default: all)."""
        return np.ones(local.num_vertices, dtype=bool)

    @abc.abstractmethod
    def compute(
        self,
        local: LocalSubgraph,
        values: np.ndarray,
        active: np.ndarray,
        superstep: int = 0,
    ) -> ComputeResult:
        """Run the sequential per-subgraph algorithm for one superstep.

        Minimize mode must mutate ``values`` in place; accumulate mode
        must leave ``values`` untouched and return partials.

        ``superstep`` is the 0-based index of the superstep being
        computed.  Programs whose accounting depends on run position
        (e.g. CC charging its one-time union-find pass on the first
        superstep) must key off this argument rather than hidden
        instance state: the engine re-instantiates programs when
        resuming from a checkpoint, and only superstep-keyed behaviour
        stays bit-identical across a crash/restart boundary.
        """

    # ------------------------------------------------------------------
    # Accumulate-mode hooks (PageRank-style programs override these)
    # ------------------------------------------------------------------

    def apply(
        self, local: LocalSubgraph, values: np.ndarray, sums: np.ndarray
    ) -> np.ndarray:
        """Turn combined replica sums into new master values."""
        raise NotImplementedError

    def has_converged(self, superstep: int, global_delta: float) -> bool:
        """Accumulate mode: decide whether to stop after this superstep."""
        raise NotImplementedError
