"""Deterministic cost model for the simulated BSP cluster.

The paper runs on a real 4-node cluster; we replace wall-clock time with
a deterministic model so results are exactly reproducible (DESIGN.md §3).
Per superstep ``k`` and worker ``i``:

* ``comp_i^k = seconds_per_work_unit × work_i^k`` where work units are
  the edge operations the local sequential algorithm performed;
* ``comm_i^k = seconds_per_message × (sent_i^k + received_i^k)``;
* the superstep barrier makes wall time ``max_i(comp_i^k + comm_i^k)``
  and the synchronization (waiting) spread
  ``ΔC_k = max_i(comp_i^k + comm_i^k) − min_i(comp_i^k + comm_i^k)``
  exactly as defined in Section V-B.

Default constants are calibrated so the LiveJournal-scale CC breakdown
reproduces Table II's comp:comm:ΔC proportions; all comparisons in the
paper are ratios, so the absolute scale is immaterial.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Simulated per-operation costs, in seconds.

    Attributes
    ----------
    seconds_per_work_unit:
        Cost of one local edge operation (scan/relax/accumulate).
    seconds_per_message:
        Cost of sending *or* receiving one vertex-value message.
    superstep_overhead:
        Fixed barrier overhead charged once per superstep per worker.
    """

    seconds_per_work_unit: float = 1.0e-6
    seconds_per_message: float = 1.5e-7
    superstep_overhead: float = 1.0e-4

    def comp_seconds(self, work_units: float) -> float:
        """Computation-stage time for ``work_units`` edge operations."""
        return self.seconds_per_work_unit * work_units

    def comm_seconds(self, sent: float, received: float) -> float:
        """Communication-stage time for the given message counts."""
        return self.seconds_per_message * (sent + received)
