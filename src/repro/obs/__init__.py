"""``repro.obs`` — per-worker structured tracing and a metrics registry.

The paper's evaluation is about *where time goes across workers*:
Figure 4 is a per-worker Gantt timeline, Tables IV/V are
message-balance breakdowns.  This package is the observability
substrate that lets the reproduction answer those questions about its
own *real* parallel execution (the deterministic
:class:`~repro.bsp.cost_model.CostModel` remains authoritative for the
paper artifacts — tracing never feeds results):

:mod:`repro.obs.trace`
    :class:`TraceRecorder` — monotonic-clock spans labeled with worker,
    superstep and stage.  :data:`NULL_RECORDER` is the always-off
    singleton every hot path holds by default: calls on it are no-ops
    and allocate nothing, so a trace-disabled run pays one attribute
    check (``recorder.enabled``) per guarded site and nothing else.

:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` — counters (messages sent/received per
    worker, checkpoint bytes, spill bytes) and gauges (active/changed
    vertex counts, peak-RSS samples), snapshotted deterministically
    into the exported trace.

:mod:`repro.obs.export`
    Renderers: JSONL (one span per line) and Chrome trace-event JSON —
    one ``tid`` per worker, loadable in Perfetto / ``chrome://tracing``,
    reconstructing the Fig. 4 timeline from real execution.

:mod:`repro.obs.summary`
    Shape validation plus the per-worker/per-stage aggregation behind
    the ``repro trace <file>`` CLI verb: busy seconds by stage,
    barrier-wait time, straggler and imbalance ratios.

Layering contract: this package imports nothing from the rest of
:mod:`repro` (the runtime/engine/pipeline layers import *it*), and the
worker kernels in :mod:`repro.runtime.worker` never touch it at all —
sessions time the kernels from outside and pass the recorder down
(enforced by the ``worker-purity`` lint rule).

Clock: spans use :func:`time.monotonic_ns`, which on Linux is
``CLOCK_MONOTONIC`` — a system-wide clock, so timestamps taken inside
the process backend's children are directly comparable with the
coordinator's.  (On platforms without a system-wide monotonic clock,
cross-process span alignment is best-effort; per-span durations are
always correct.)
"""

from __future__ import annotations

from .export import load_trace, write_chrome_trace, write_jsonl_trace, write_trace
from .metrics import MetricsRegistry, sample_peak_rss_kb
from .summary import TraceSummary, render_trace_summary, summarize_trace, validate_chrome_trace
from .trace import NULL_RECORDER, Span, TraceRecorder

__all__ = [
    "Span",
    "TraceRecorder",
    "NULL_RECORDER",
    "MetricsRegistry",
    "sample_peak_rss_kb",
    "write_trace",
    "write_chrome_trace",
    "write_jsonl_trace",
    "load_trace",
    "TraceSummary",
    "summarize_trace",
    "validate_chrome_trace",
    "render_trace_summary",
]
