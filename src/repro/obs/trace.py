"""Span recording: monotonic-clock intervals labeled worker/superstep/stage.

Two implementations of one tiny protocol:

:class:`TraceRecorder`
    The real thing — an append-only list of :class:`Span` records plus
    a :class:`~repro.obs.metrics.MetricsRegistry`.  Span timestamps are
    raw :func:`time.monotonic_ns` values; exporters subtract the
    recorder's ``origin_ns`` so traces start at t=0.

:data:`NULL_RECORDER`
    The always-off singleton (``enabled`` is ``False``).  Every method
    is a constant no-op and :meth:`~_NullRecorder.span` returns one
    shared context manager, so holding it costs a trace-disabled run
    nothing per superstep.  Hot paths guard span construction with
    ``if recorder.enabled:`` and call kwargs-free no-op methods
    otherwise — zero per-superstep allocations on the disabled path.

The recorder is deliberately not thread-safe for concurrent ``add``
calls: every producer in this codebase records from the coordinator
thread (worker timestamps travel back through the existing stage
barriers — see :mod:`repro.runtime.base`), which also keeps span order
deterministic for a given execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .metrics import MetricsRegistry, _NullMetricsRegistry

__all__ = ["Span", "TraceRecorder", "NULL_RECORDER"]


@dataclass(frozen=True)
class Span:
    """One closed interval on the trace timeline.

    ``worker`` is ``None`` for coordinator-side spans (the engine loop,
    pipeline stages, checkpoint writes); exporters map workers to one
    ``tid`` each and the coordinator to ``tid`` 0.  ``t0_ns``/``t1_ns``
    are raw ``time.monotonic_ns`` readings.
    """

    name: str
    cat: str
    t0_ns: int
    t1_ns: int
    worker: Optional[int] = None
    superstep: Optional[int] = None
    args: Optional[Dict[str, Any]] = None

    @property
    def duration_seconds(self) -> float:
        return (self.t1_ns - self.t0_ns) * 1e-9


class _SpanContext:
    """Context manager that records one span on exit (re-entrant safe)."""

    __slots__ = ("_recorder", "_name", "_cat", "_worker", "_superstep", "_args", "_t0")

    def __init__(self, recorder, name, cat, worker, superstep, args):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._worker = worker
        self._superstep = superstep
        self._args = args
        self._t0 = 0

    def __enter__(self) -> "_SpanContext":
        self._t0 = time.monotonic_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._recorder.add(
            self._name,
            self._t0,
            time.monotonic_ns(),
            worker=self._worker,
            superstep=self._superstep,
            cat=self._cat,
            args=self._args,
        )


@dataclass
class TraceRecorder:
    """Collects spans and metrics for one traced execution."""

    label: str = "run"
    enabled: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        self.metrics = MetricsRegistry()
        #: the timeline origin every exported timestamp is relative to.
        self.origin_ns = time.monotonic_ns()
        # One wall-clock stamp for the trace *header* so a human can
        # tell when the trace was taken.  Recorded metadata only, never
        # an input to any result — see the audited exemption in
        # repro.lint.rules.determinism.
        self.wall_time = time.time()
        # Raw tuples in Span field order; materialized lazily by
        # spans().  Appending a tuple is ~2x cheaper than constructing
        # a frozen dataclass, and add() sits inside every traced
        # superstep — this is most of the tracing-enabled overhead on
        # sub-10ms runs (bench_runtime --trace --check-overhead).
        self._spans: List[tuple] = []

    # ------------------------------------------------------------------

    def add(
        self,
        name: str,
        t0_ns: int,
        t1_ns: int,
        worker: Optional[int] = None,
        superstep: Optional[int] = None,
        cat: str = "stage",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one closed span from raw ``monotonic_ns`` readings."""
        self._spans.append(
            (name, cat, int(t0_ns), int(t1_ns), worker, superstep, args)
        )

    def span(
        self,
        name: str,
        worker: Optional[int] = None,
        superstep: Optional[int] = None,
        cat: str = "stage",
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanContext:
        """``with recorder.span("pipeline.partition"): ...``"""
        return _SpanContext(self, name, cat, worker, superstep, args)

    # ------------------------------------------------------------------

    def spans(self) -> Tuple[Span, ...]:
        return tuple(Span(*raw) for raw in self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    def num_workers(self) -> int:
        """1 + the highest worker id seen (0 when only coordinator spans)."""
        workers = [raw[4] for raw in self._spans if raw[4] is not None]
        return max(workers) + 1 if workers else 0


class _NullSpanContext:
    """The shared no-op context manager the null recorder hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class _NullRecorder:
    """Tracing disabled: every operation is a constant no-op.

    A single module-level instance (:data:`NULL_RECORDER`) serves every
    untraced execution; nothing is ever stored, and ``span`` returns
    the one shared context manager instead of constructing anything.
    """

    __slots__ = ()

    enabled = False
    metrics = _NullMetricsRegistry()

    def add(self, *args, **kwargs) -> None:
        return None

    def span(self, *args, **kwargs) -> _NullSpanContext:
        return _NULL_SPAN

    def spans(self) -> Tuple[Span, ...]:
        return ()

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())

    def num_workers(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_RECORDER"


#: the process-wide disabled recorder; hot paths hold this by default.
NULL_RECORDER = _NullRecorder()
