"""Counters and gauges for traced runs, snapshotted deterministically.

The metric *catalog* the runtime/engine/pipeline layers record when
tracing is enabled (see README § Observability):

==========================  =======  ====================================
name                        kind     meaning
==========================  =======  ====================================
``messages.sent``           counter  replica messages sent, per worker
``messages.received``       counter  replica messages received, per worker
``vertices.changed``        counter  vertices changed per superstep, per worker
``vertices.active``         gauge    active vertices after each superstep
``checkpoint.bytes``        counter  bytes written by snapshot publishes
``checkpoint.snapshots``    counter  snapshots written
``spill.bytes``             counter  bytes spilled by out-of-core partitioning
``rss.peak_kb``             gauge    peak-RSS samples (coordinator process)
==========================  =======  ====================================

Counters accumulate; gauges keep the last and the maximum observed
value.  Both shard by an optional ``worker`` label (``None`` is the
coordinator/total series).  ``snapshot()`` is sorted by name and label
so the exported form is byte-stable for a given sequence of updates.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["Counter", "Gauge", "MetricsRegistry", "sample_peak_rss_kb"]

#: snapshot key for the unlabeled (coordinator/total) series.
_TOTAL = "total"


def _label(worker: Optional[int]) -> str:
    return _TOTAL if worker is None else f"worker_{worker}"


class Counter:
    """A monotonically accumulating count, optionally sharded by worker."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        self.name = name
        self._values: Dict[str, float] = {}

    def inc(self, value: float = 1, worker: Optional[int] = None) -> None:
        key = _label(worker)
        self._values[key] = self._values.get(key, 0) + value

    def total(self) -> float:
        return sum(self._values.values())

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "counter",
            "total": self.total(),
            "series": {k: self._values[k] for k in sorted(self._values)},
        }


class Gauge:
    """A sampled value; keeps the last and the max per series."""

    __slots__ = ("name", "_last", "_max")

    def __init__(self, name: str):
        self.name = name
        self._last: Dict[str, float] = {}
        self._max: Dict[str, float] = {}

    def sample(self, value: float, worker: Optional[int] = None) -> None:
        key = _label(worker)
        self._last[key] = value
        if key not in self._max or value > self._max[key]:
            self._max[key] = value

    #: alias: ``set`` reads better for state-like gauges.
    set = sample

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "gauge",
            "last": {k: self._last[k] for k in sorted(self._last)},
            "max": {k: self._max[k] for k in sorted(self._max)},
        }


class MetricsRegistry:
    """Name-keyed counters and gauges for one traced execution."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            if name in self._gauges:
                raise ValueError(f"metric {name!r} is already a gauge") from None
            self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            if name in self._counters:
                raise ValueError(f"metric {name!r} is already a counter") from None
            self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def snapshot(self) -> Dict[str, Any]:
        """Deterministically ordered name -> metric snapshot mapping."""
        out: Dict[str, Any] = {}
        for name in sorted(set(self._counters) | set(self._gauges)):
            metric = self._counters.get(name) or self._gauges[name]
            out[name] = metric.snapshot()
        return out


class _NullCounter:
    __slots__ = ()

    def inc(self, value: float = 1, worker: Optional[int] = None) -> None:
        return None

    def total(self) -> float:
        return 0


class _NullGauge:
    __slots__ = ()

    def sample(self, value: float, worker: Optional[int] = None) -> None:
        return None

    set = sample


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()


class _NullMetricsRegistry:
    """Metrics sink for the null recorder: accepts and discards everything."""

    __slots__ = ()

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def snapshot(self) -> Dict[str, Any]:
        return {}


def sample_peak_rss_kb() -> Optional[float]:
    """This process's peak RSS in KB, or ``None`` where unsupported."""
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB elsewhere
        peak /= 1024
    return float(peak)
