"""Trace exporters and the matching loader.

Two on-disk forms, chosen by file extension in :func:`write_trace`:

* ``.jsonl`` — one JSON object per line: a header, one ``span`` record
  per span, and a final ``metrics`` record.  Grep/stream friendly.
* anything else (conventionally ``.json`` / ``.trace.json``) — Chrome
  trace-event JSON: complete ``"X"`` duration events on ``pid`` 1 with
  **one ``tid`` per worker** (worker ``w`` → ``tid w+1``; the
  coordinator — engine loop, pipeline stages, checkpoint writes — is
  ``tid`` 0) plus ``"M"`` thread-name metadata.  Load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing`` and the compute /
  exchange / barrier spans render exactly the per-worker Gantt timeline
  of the paper's Figure 4 — from real execution rather than the cost
  model.

Timestamps are microseconds relative to the recorder's ``origin_ns``,
so every trace starts near t=0.  :func:`load_trace` reads either form
back into one normalized dict (``format``/``meta``/``events``/
``metrics``) for :mod:`repro.obs.summary` and the ``repro trace`` CLI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["write_trace", "write_chrome_trace", "write_jsonl_trace", "load_trace"]

_FORMAT = "repro-trace"
_VERSION = 1
#: chrome pid all events share (single logical process).
_PID = 1


def _tid(worker: Optional[int]) -> int:
    """Coordinator spans on tid 0, worker ``w`` on tid ``w + 1``."""
    return 0 if worker is None else int(worker) + 1


def _tid_name(tid: int) -> str:
    return "coordinator" if tid == 0 else f"worker {tid - 1}"


def _header(recorder) -> Dict[str, Any]:
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "label": recorder.label,
        "wall_time": recorder.wall_time,
        "num_workers": recorder.num_workers(),
        "num_spans": len(recorder),
    }


def write_trace(recorder, path: str) -> str:
    """Write ``recorder`` to ``path``; ``.jsonl`` selects JSONL, else Chrome."""
    if str(path).endswith(".jsonl"):
        return write_jsonl_trace(recorder, path)
    return write_chrome_trace(recorder, path)


def write_chrome_trace(recorder, path: str) -> str:
    """Render the recorder as Chrome trace-event JSON (Perfetto-loadable)."""
    origin = recorder.origin_ns
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
         "args": {"name": f"repro:{recorder.label}"}},
    ]
    tids = sorted({_tid(s.worker) for s in recorder.spans()} | {0})
    for tid in tids:
        events.append(
            {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
             "args": {"name": _tid_name(tid)}}
        )
        events.append(
            {"name": "thread_sort_index", "ph": "M", "pid": _PID, "tid": tid,
             "args": {"sort_index": tid}}
        )
    for span in recorder.spans():
        args: Dict[str, Any] = {}
        if span.superstep is not None:
            args["superstep"] = span.superstep
        if span.args:
            args.update(span.args)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "pid": _PID,
                "tid": _tid(span.worker),
                "ts": (span.t0_ns - origin) / 1000.0,
                "dur": (span.t1_ns - span.t0_ns) / 1000.0,
                "args": args,
            }
        )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {**_header(recorder), "metrics": recorder.metrics.snapshot()},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def write_jsonl_trace(recorder, path: str) -> str:
    """Render the recorder as line-delimited JSON (header, spans, metrics)."""
    origin = recorder.origin_ns
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"type": "header", **_header(recorder)}, sort_keys=True))
        fh.write("\n")
        for span in recorder.spans():
            record: Dict[str, Any] = {
                "type": "span",
                "name": span.name,
                "cat": span.cat,
                "worker": span.worker,
                "superstep": span.superstep,
                "ts_us": (span.t0_ns - origin) / 1000.0,
                "dur_us": (span.t1_ns - span.t0_ns) / 1000.0,
            }
            if span.args:
                record["args"] = span.args
            fh.write(json.dumps(record, sort_keys=True))
            fh.write("\n")
        fh.write(
            json.dumps(
                {"type": "metrics", "metrics": recorder.metrics.snapshot()},
                sort_keys=True,
            )
        )
        fh.write("\n")
    return str(path)


def _normalize_chrome(document: Dict[str, Any]) -> Dict[str, Any]:
    events = []
    dropped = 0
    for event in document.get("traceEvents", []):
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        # A trace from a crashed run can hold torn events missing the
        # required fields; drop them (counted in meta) instead of
        # raising so the surviving spans still render partial tables.
        if not all(k in event for k in ("name", "tid", "ts", "dur")):
            dropped += 1
            continue
        tid = event["tid"]
        args = dict(event.get("args") or {})
        try:
            ts_us, dur_us = float(event["ts"]), float(event["dur"])
        except (TypeError, ValueError):
            dropped += 1
            continue
        events.append(
            {
                "name": event["name"],
                "cat": event.get("cat", ""),
                "worker": None if tid == 0 else tid - 1,
                "superstep": args.pop("superstep", None),
                "ts_us": ts_us,
                "dur_us": dur_us,
                "args": args,
            }
        )
    meta = dict(document.get("otherData") or {})
    metrics = meta.pop("metrics", {})
    if dropped:
        meta["dropped_events"] = dropped
    return {"format": "chrome", "meta": meta, "events": events, "metrics": metrics}


def _normalize_jsonl(lines: List[Dict[str, Any]]) -> Dict[str, Any]:
    meta: Dict[str, Any] = {}
    metrics: Dict[str, Any] = {}
    events = []
    dropped = 0
    for record in lines:
        kind = record.get("type")
        if kind == "header":
            meta = {k: v for k, v in record.items() if k != "type"}
        elif kind == "metrics":
            metrics = record.get("metrics", {})
        elif kind == "span":
            if not all(k in record for k in ("name", "ts_us", "dur_us")):
                dropped += 1
                continue
            try:
                ts_us, dur_us = float(record["ts_us"]), float(record["dur_us"])
            except (TypeError, ValueError):
                dropped += 1
                continue
            events.append(
                {
                    "name": record["name"],
                    "cat": record.get("cat", ""),
                    "worker": record.get("worker"),
                    "superstep": record.get("superstep"),
                    "ts_us": ts_us,
                    "dur_us": dur_us,
                    "args": dict(record.get("args") or {}),
                }
            )
    if dropped:
        meta["dropped_events"] = dropped
    return {"format": "jsonl", "meta": meta, "events": events, "metrics": metrics}


def load_trace(path: str) -> Dict[str, Any]:
    """Read a trace file (either exported form) into the normalized dict.

    The result maps ``format`` (``"chrome"``/``"jsonl"``), ``meta`` (the
    header fields), ``events`` (span dicts with ``name``/``cat``/
    ``worker``/``superstep``/``ts_us``/``dur_us``/``args``) and
    ``metrics`` (the registry snapshot).  Raises :class:`ValueError` for
    files that are neither form.
    """
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        return _normalize_chrome(document)
    # JSONL: every non-empty line must be its own JSON object — except
    # the final one, which a run crashing mid-write leaves truncated.
    # Dropping (and counting) that torn tail keeps `repro trace` able
    # to render the partial per-stage tables of everything that did
    # make it to disk; a bad line anywhere *else* is still corruption.
    raw_lines = [
        (i, line) for i, line in enumerate(text.splitlines(), start=1) if line.strip()
    ]
    lines: List[Dict[str, Any]] = []
    truncated_tail = 0
    for pos, (i, line) in enumerate(raw_lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if pos == len(raw_lines) - 1 and lines:
                truncated_tail = 1
                break
            raise ValueError(f"{path}:{i}: not a trace file ({exc})") from exc
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{i}: expected a JSON object per line")
        lines.append(record)
    if not any(r.get("type") == "span" for r in lines) and not any(
        r.get("type") == "header" for r in lines
    ):
        raise ValueError(
            f"{path}: neither Chrome trace-event JSON (no 'traceEvents') nor "
            "repro JSONL (no header/span records)"
        )
    trace = _normalize_jsonl(lines)
    if truncated_tail:
        trace["meta"]["dropped_events"] = (
            trace["meta"].get("dropped_events", 0) + truncated_tail
        )
    return trace
