"""Trace validation and the per-worker/per-stage summary.

:func:`validate_chrome_trace` is the shape contract the CI
``trace-smoke`` job and the exporter tests enforce on Chrome trace
files: every duration event carries ``pid``/``tid``/``ts``/``dur``,
spans on one ``tid`` properly nest (or are disjoint), and worker
threads occupy exactly one ``tid`` each (worker ``w`` ↔ ``tid w+1``,
contiguous, coordinator on ``tid`` 0).

:func:`summarize_trace` aggregates a loaded trace into the
:class:`TraceSummary` behind ``repro trace <file>``: per-worker busy
seconds split by stage (compute / exchange up / exchange down), barrier
wait, plus the two load-balance figures the paper's Figure 4 and
Table V are about —

``straggler_ratio``
    max over workers of total busy seconds divided by the mean: 1.0 is
    a perfectly balanced run, 2.0 means the slowest worker did twice
    the mean work and everyone else waited for it.

``stage_imbalance``
    the same max/mean ratio per stage, which localizes *where* the skew
    comes from (compute skew vs. exchange hot spots).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "validate_chrome_trace",
    "summarize_trace",
    "TraceSummary",
    "render_trace_summary",
]

#: nesting comparisons tolerate sub-microsecond float rounding.
_TOL_US = 0.01

#: worker span names by stage bucket (barrier spans are their own bucket).
_WORKER_STAGES = ("compute", "exchange.up", "exchange.down")


def _check_nesting(tid: int, events: Sequence[Dict[str, Any]]) -> List[str]:
    """Spans on one tid must nest or be disjoint — never partially overlap."""
    problems: List[str] = []
    ordered = sorted(events, key=lambda e: (e["ts"], -e["dur"]))
    stack: List[Tuple[float, float, str]] = []
    for event in ordered:
        t0, t1 = event["ts"], event["ts"] + event["dur"]
        while stack and t0 >= stack[-1][1] - _TOL_US:
            stack.pop()
        if stack and t1 > stack[-1][1] + _TOL_US:
            problems.append(
                f"tid {tid}: span {event['name']!r} [{t0:.1f}, {t1:.1f}]us "
                f"partially overlaps {stack[-1][2]!r} "
                f"[{stack[-1][0]:.1f}, {stack[-1][1]:.1f}]us"
            )
            continue
        stack.append((t0, t1, event["name"]))
    return problems


def validate_chrome_trace(trace: Any) -> Dict[str, Any]:
    """Validate Chrome trace-event shape; raise ``ValueError`` on problems.

    ``trace`` is a path or an already-parsed document.  Returns summary
    stats (event count, tids, workers, duration) on success.
    """
    if isinstance(trace, str):
        with open(trace, "r", encoding="utf-8") as fh:
            trace = json.load(fh)
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("not a Chrome trace: no 'traceEvents' array")
    problems: List[str] = []
    by_tid: Dict[int, List[Dict[str, Any]]] = {}
    thread_names: Dict[int, str] = {}
    num_x = 0
    for i, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict) or "ph" not in event:
            problems.append(f"event {i}: not an object with a 'ph' phase")
            continue
        if event["ph"] == "M":
            if event.get("name") == "thread_name":
                thread_names[event.get("tid", 0)] = event.get("args", {}).get("name", "")
            continue
        if event["ph"] != "X":
            problems.append(f"event {i}: unexpected phase {event['ph']!r}")
            continue
        num_x += 1
        missing = [k for k in ("pid", "tid", "ts", "dur", "name") if k not in event]
        if missing:
            problems.append(f"event {i} ({event.get('name', '?')!r}): missing {missing}")
            continue
        by_tid.setdefault(event["tid"], []).append(event)
    # One tid per worker: the worker tids declared by thread_name
    # metadata must be 1..p with no gaps, coordinator on tid 0.
    worker_tids = sorted(
        tid for tid, name in thread_names.items() if name.startswith("worker")
    )
    if worker_tids and worker_tids != list(range(1, len(worker_tids) + 1)):
        problems.append(
            f"worker tids {worker_tids} are not contiguous from 1 "
            "(one tid per worker, coordinator on tid 0)"
        )
    for tid in by_tid:
        if tid != 0 and tid not in thread_names:
            problems.append(f"tid {tid} has events but no thread_name metadata")
    for tid, events in sorted(by_tid.items()):
        problems.extend(_check_nesting(tid, events))
    if problems:
        raise ValueError(
            "invalid Chrome trace:\n  " + "\n  ".join(problems[:20])
            + ("" if len(problems) <= 20 else f"\n  ... {len(problems) - 20} more")
        )
    spans = [e for events in by_tid.values() for e in events]
    end = max((e["ts"] + e["dur"] for e in spans), default=0.0)
    start = min((e["ts"] for e in spans), default=0.0)
    return {
        "num_events": num_x,
        "tids": sorted(by_tid),
        "num_workers": len(worker_tids),
        "duration_us": end - start,
    }


@dataclass
class TraceSummary:
    """The aggregate ``repro trace`` prints (seconds unless noted)."""

    label: str
    num_workers: int
    num_supersteps: int
    #: per worker: stage-name -> busy seconds (compute/exchange.up/down).
    worker_stage_seconds: List[Dict[str, float]] = field(default_factory=list)
    #: per worker: seconds spent waiting at stage barriers.
    worker_barrier_seconds: List[float] = field(default_factory=list)
    #: coordinator-side totals: span name -> seconds.
    coordinator_seconds: Dict[str, float] = field(default_factory=dict)
    #: max/mean of per-worker total busy seconds (1.0 = balanced).
    straggler_ratio: float = 1.0
    #: per stage, max/mean of per-worker busy seconds.
    stage_imbalance: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def worker_busy_seconds(self) -> List[float]:
        return [sum(stages.values()) for stages in self.worker_stage_seconds]


def _max_mean(values: Sequence[float]) -> float:
    vals = [v for v in values]
    if not vals:
        return 1.0
    mean = sum(vals) / len(vals)
    if mean <= 0:
        return 1.0
    return max(vals) / mean


def summarize_trace(trace: Dict[str, Any]) -> TraceSummary:
    """Aggregate a :func:`repro.obs.export.load_trace` dict."""
    events = trace["events"]
    meta = trace.get("meta", {})
    workers = sorted({e["worker"] for e in events if e["worker"] is not None})
    p = (max(workers) + 1) if workers else int(meta.get("num_workers") or 0)
    supersteps = {e["superstep"] for e in events if e["superstep"] is not None}

    stage_seconds = [{stage: 0.0 for stage in _WORKER_STAGES} for _ in range(p)]
    barrier_seconds = [0.0 for _ in range(p)]
    coordinator: Dict[str, float] = {}
    for event in events:
        seconds = event["dur_us"] * 1e-6
        w = event["worker"]
        if w is None:
            coordinator[event["name"]] = coordinator.get(event["name"], 0.0) + seconds
        elif event["name"].startswith("barrier."):
            barrier_seconds[w] += seconds
        elif event["name"] in _WORKER_STAGES:
            stage_seconds[w][event["name"]] += seconds

    busy = [sum(stages.values()) for stages in stage_seconds]
    imbalance = {
        "compute": _max_mean([s["compute"] for s in stage_seconds]),
        "exchange": _max_mean(
            [s["exchange.up"] + s["exchange.down"] for s in stage_seconds]
        ),
    }
    return TraceSummary(
        label=str(meta.get("label", "run")),
        num_workers=p,
        num_supersteps=len(supersteps),
        worker_stage_seconds=stage_seconds,
        worker_barrier_seconds=barrier_seconds,
        coordinator_seconds=coordinator,
        straggler_ratio=_max_mean(busy),
        stage_imbalance=imbalance,
        metrics=trace.get("metrics", {}),
    )


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Minimal fixed-width table (obs imports nothing from repro.analysis)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_trace_summary(summary: TraceSummary) -> str:
    """Human-readable per-worker/per-stage report for ``repro trace``."""
    out: List[str] = [
        f"trace: {summary.label}  workers={summary.num_workers}  "
        f"supersteps={summary.num_supersteps}"
    ]
    if summary.num_workers:
        rows = []
        for w, stages in enumerate(summary.worker_stage_seconds):
            busy = sum(stages.values())
            rows.append(
                (
                    w,
                    f"{stages['compute']:.4f}",
                    f"{stages['exchange.up']:.4f}",
                    f"{stages['exchange.down']:.4f}",
                    f"{summary.worker_barrier_seconds[w]:.4f}",
                    f"{busy:.4f}",
                )
            )
        out.append(
            _table(
                ["Worker", "Compute", "ExchUp", "ExchDown", "Barrier", "Busy"],
                rows,
            )
        )
        out.append(
            f"straggler ratio (max/mean busy): {summary.straggler_ratio:.3f}   "
            f"imbalance: compute {summary.stage_imbalance.get('compute', 1.0):.3f}, "
            f"exchange {summary.stage_imbalance.get('exchange', 1.0):.3f}"
        )
    if summary.coordinator_seconds:
        rows = [
            (name, f"{seconds:.4f}")
            for name, seconds in sorted(summary.coordinator_seconds.items())
        ]
        out.append(_table(["Coordinator span", "Seconds"], rows))
    if summary.metrics:
        rows = []
        for name, snap in sorted(summary.metrics.items()):
            if snap.get("kind") == "counter":
                rows.append((name, "counter", f"{snap.get('total', 0):g}"))
            else:
                peak = max(snap.get("max", {}).values(), default=0)
                rows.append((name, "gauge(max)", f"{peak:g}"))
        out.append(_table(["Metric", "Kind", "Value"], rows))
    return "\n\n".join(out)
