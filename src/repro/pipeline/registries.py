"""The five concrete registries every entry point routes through.

* :data:`PARTITIONERS` — every partition algorithm in the code base,
  including the streaming/sharded EBV variants and the two random
  baselines.  Factories take constructor kwargs only.
* :data:`APPS` — the BSP applications; factories take ``(graph, **kw)``
  and delegate to :func:`repro.frameworks.make_program` so the CLI, the
  fluent builder and the experiment drivers build programs identically.
* :data:`GENERATORS` — graph sources: the synthetic generators (uniform
  ``vertices=`` sizing via :func:`repro.graph.generate_graph`) plus a
  ``file`` source that reads an edge list from disk.
* :data:`STREAMS` — out-of-core graph sources: chunked
  :class:`~repro.stream.EdgeChunkStream` readers (``edgelist`` text,
  binary ``npy``) that feed :func:`repro.stream.stream_partition`
  without ever materializing a :class:`~repro.graph.Graph`; a
  ``source`` spec naming one of these makes the pipeline run the
  out-of-core partition path.
* :data:`BACKENDS` — the :mod:`repro.runtime` execution backends for
  the BSP computation stage (``serial``, ``thread``, ``process``);
  factories take constructor kwargs only.
* :data:`EXPERIMENTS` — the paper-artifact drivers; factories take an
  :class:`~repro.experiments.ExperimentConfig` and return report text.

These registries are the single source of truth for what exists: CLI
``choices``, spec validation and deprecation shims are all views over
them, so the available components can never drift from what the help
text and error messages advertise.
"""

from __future__ import annotations

from functools import partial

from ..experiments import (
    generate_report,
    run_breakdown,
    run_fig2,
    run_fig3,
    run_fig5,
    run_table1,
    run_tables345,
)
from ..frameworks import make_program
from ..graph import GENERATOR_KINDS, generate_graph, read_edge_list
from ..partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    FennelPartitioner,
    GingerPartitioner,
    HDRFPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
    RandomEdgeHashPartitioner,
    RandomVertexHashPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
)
from ..runtime import BACKEND_TYPES
from ..stream import NpyEdgeStream, TextEdgeListStream
from .registry import Registry

__all__ = [
    "PARTITIONERS",
    "APPS",
    "GENERATORS",
    "STREAMS",
    "BACKENDS",
    "EXPERIMENTS",
]


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------

PARTITIONERS = Registry("partitioner")

PARTITIONERS.register("ebv", EBVPartitioner, aliases=("ebv-sort",))
PARTITIONERS.register("ebv-stream", StreamingEBVPartitioner)
PARTITIONERS.register("ebv-sharded", ShardedEBVPartitioner)
PARTITIONERS.register("ginger", GingerPartitioner)
PARTITIONERS.register("dbh", DBHPartitioner)
PARTITIONERS.register("cvc", CVCPartitioner)
PARTITIONERS.register("ne", NEPartitioner)
PARTITIONERS.register("metis", MetisLikePartitioner)
PARTITIONERS.register("hdrf", HDRFPartitioner)
PARTITIONERS.register("fennel", FennelPartitioner)
PARTITIONERS.register("random-edge", RandomEdgeHashPartitioner)
PARTITIONERS.register("random-vertex", RandomVertexHashPartitioner)


@PARTITIONERS.register("ebv-unsort")
def _ebv_unsort(**kwargs) -> EBVPartitioner:
    """EBV without the degree sort (the paper's EBV-unsort ablation)."""
    return EBVPartitioner(sort_order="input", **kwargs)


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------

APPS = Registry("app")


def _app_factory(canonical: str):
    def factory(graph, **kwargs):
        return make_program(canonical, graph, **kwargs)

    factory.__name__ = f"make_{canonical.lower()}"
    factory.__doc__ = f"Build the {canonical} program via make_program."
    return factory


APPS.register("cc", _app_factory("CC"), aliases=("connected-components",))
APPS.register("pr", _app_factory("PR"), aliases=("pagerank",))
APPS.register("sssp", _app_factory("SSSP"), aliases=("shortest-paths",))
APPS.register("bfs", _app_factory("BFS"))
APPS.register("kcore", _app_factory("KCORE"), aliases=("k-core",))
APPS.register("featprop", _app_factory("FEATPROP"), aliases=("feature-propagation",))
APPS.register("cc-delta", _app_factory("CC-DELTA"), aliases=("incremental-cc",))
APPS.register("pr-delta", _app_factory("PR-DELTA"), aliases=("incremental-pagerank",))


# ----------------------------------------------------------------------
# Graph sources
# ----------------------------------------------------------------------

GENERATORS = Registry("generator")

for _kind in GENERATOR_KINDS:
    GENERATORS.register(_kind, partial(generate_graph, _kind))


@GENERATORS.register("file")
def _file_source(path: str, **kwargs):
    """Read an edge list from disk (``"file?path=graph.txt"``)."""
    return read_edge_list(path, **kwargs)


# ----------------------------------------------------------------------
# Out-of-core stream sources
# ----------------------------------------------------------------------

STREAMS = Registry("stream")

STREAMS.register("edgelist", TextEdgeListStream, aliases=("text",))
STREAMS.register("npy", NpyEdgeStream)


# ----------------------------------------------------------------------
# Execution backends
# ----------------------------------------------------------------------

BACKENDS = Registry("backend")

_BACKEND_ALIASES = {"thread": ("threads",), "process": ("mp",)}
for _name, _backend_cls in BACKEND_TYPES.items():
    BACKENDS.register(_name, _backend_cls, aliases=_BACKEND_ALIASES.get(_name, ()))


# ----------------------------------------------------------------------
# Experiment drivers
# ----------------------------------------------------------------------

EXPERIMENTS = Registry("experiment")

EXPERIMENTS.register("table1", lambda config: run_table1(config)[1])
EXPERIMENTS.register("table2", lambda config: run_breakdown(config)[2])
EXPERIMENTS.register("fig4", lambda config: run_breakdown(config)[3])
EXPERIMENTS.register("table3", lambda config: run_tables345(config)[1])
EXPERIMENTS.register("table4", lambda config: run_tables345(config)[2])
EXPERIMENTS.register("table5", lambda config: run_tables345(config)[3])
EXPERIMENTS.register("fig2", lambda config: run_fig2(config)[1])
EXPERIMENTS.register("fig3", lambda config: run_fig3(config)[1])
EXPERIMENTS.register("fig5", lambda config: run_fig5(config)[1])
EXPERIMENTS.register(
    "all", lambda config: generate_report(config, include_figures=False)
)
