"""The fluent pipeline builder and its machine-consumable result.

One front door for every scenario::

    from repro.pipeline import Pipeline

    result = (
        Pipeline()
        .source("powerlaw?vertices=10000")
        .partition("ebv", parts=8)
        .refine()
        .run("pagerank")
        .with_cost_model(seconds_per_message=2e-7)
        .execute()
    )
    print(result.to_json())

The same run as data::

    from repro.pipeline import PipelineSpec, run_spec

    spec = PipelineSpec(source="powerlaw?vertices=10000", parts=8,
                        refine=True, app="pr")
    result = run_spec(spec)

Both paths execute identically — a fluent chain is serialized through
:meth:`Pipeline.spec` whenever its source is spec-able — so CLI calls,
experiment sweeps and JSON-driven batch runs cannot diverge.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from time import monotonic_ns
from typing import Any, Dict, Optional, Union

from ..bsp import (
    BSPEngine,
    BSPRun,
    CostModel,
    DistributedGraph,
    build_distributed_graph,
)
from ..graph import Graph
from ..obs import NULL_RECORDER, TraceRecorder, write_trace
from ..partition import PartitionMetrics, PartitionResult, partition_metrics, refine_vertex_cut
from ..stream import EdgeChunkStream, SpilledPartition, StreamError, stream_partition
from .registries import APPS, BACKENDS, GENERATORS, PARTITIONERS, STREAMS
from .registry import RegistryError, format_spec, parse_spec
from .spec import PipelineSpec, SpecError

__all__ = ["Pipeline", "PipelineResult", "run_spec", "resume_pipeline"]

#: the serialized spec a checkpointing pipeline drops into its root so
#: ``repro resume <dir>`` can rebuild the exact run.
PIPELINE_SPEC_FILENAME = "pipeline.json"
#: subdirectory of the checkpoint root holding the persistent stream
#: spill (reused on resume — no re-partitioning).
SPILL_SUBDIR = "spill"


def _stage(label: str, thunk):
    """Run one pipeline stage, converting configuration errors to SpecError.

    Bad constructor kwargs surface as TypeError/ValueError deep inside a
    component; re-raising them as :class:`SpecError` tagged with the
    stage keeps ``python -m repro pipeline`` errors clean and precise.
    """
    try:
        return thunk()
    except (SpecError, RegistryError):
        raise
    except (TypeError, ValueError, OSError) as exc:
        raise SpecError(f"{label} stage failed: {exc}") from exc


_SCALAR_TYPES = (bool, int, float, str, type(None))


def _split_kwargs(kwargs: Dict[str, Any]):
    """Separate spec-string-safe scalars from in-memory objects.

    Scalars fold into the canonical spec string (serializable); objects
    (e.g. a FEATPROP ``features`` array) are kept as real constructor
    overrides — usable fluently, but not representable in a JSON spec.
    """
    scalars: Dict[str, Any] = {}
    objects: Dict[str, Any] = {}
    for key, value in kwargs.items():
        (scalars if isinstance(value, _SCALAR_TYPES) else objects)[key] = value
    return scalars, objects


def _merge_spec(spec: str, kwargs: Dict[str, Any]) -> str:
    """Fold direct kwargs into a spec string, kwargs winning on clashes."""
    name, base = parse_spec(spec)
    base.update(kwargs)
    return format_spec(name, base)


@dataclass
class PipelineResult:
    """Everything a finished pipeline produced, in one bundle.

    ``to_dict``/``to_json`` expose the machine-readable summary (the
    heavyweight ``graph``/``partition``/``run`` objects stay available
    as attributes for further in-process analysis).  ``timings`` holds
    per-stage wall-clock seconds.
    """

    graph: Graph
    partition: PartitionResult
    metrics: PartitionMetrics
    run: Optional[BSPRun]
    timings: Dict[str, float]
    spec: Optional[PipelineSpec] = None
    #: the routed distributed graph (built only when an app ran); kept
    #: so callers can execute further programs without re-partitioning.
    distributed: Optional[DistributedGraph] = None
    #: checkpoint root the run wrote snapshots to (``None`` when the
    #: pipeline ran without checkpointing).
    checkpoint_dir: Optional[str] = None
    #: the spilled-partition manifest when the source was an out-of-core
    #: stream (``None`` for in-memory sources); records |E|, |V|, the
    #: per-part edge counts and the replication factor as observed by
    #: the streaming assigner, plus the spill volume.
    stream: Optional[Dict[str, Any]] = None
    #: path the execution trace was written to (``None`` when tracing
    #: was off); load it with :func:`repro.obs.load_trace` or inspect
    #: it with ``repro trace <path>``.
    trace_path: Optional[str] = None
    #: drift report of the edge-mutation stage (``None`` when the
    #: pipeline ran without mutations): the
    #: :meth:`repro.mutate.MutationResult.report` dict, plus
    #: ``seed_supersteps``/``seed_messages`` when a delta app was
    #: warm-started from a cold base run.
    mutation: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary of the whole run."""
        run_summary = None
        if self.run is not None:
            run_summary = {
                "program": self.run.program,
                "backend": self.run.backend,
                "partition_method": self.run.partition_method,
                "num_workers": self.run.num_workers,
                "num_supersteps": self.run.num_supersteps,
                "total_messages": self.run.total_messages,
                "message_max_mean_ratio": self.run.message_max_mean_ratio,
                "comp": self.run.comp,
                "comm": self.run.comm,
                "delta_c": self.run.delta_c,
                "execution_time": self.run.execution_time,
                "resumed_from": self.run.resumed_from,
            }
        payload: Dict[str, Any] = {
            "spec": None if self.spec is None else self.spec.to_dict(),
            "graph": {
                "name": self.graph.name,
                "num_vertices": self.graph.num_vertices,
                "num_edges": self.graph.num_edges,
                "directed": self.graph.directed,
            },
            "partition": {
                "method": self.partition.method,
                "kind": self.partition.kind,
                "num_parts": self.partition.num_parts,
                "edge_imbalance": self.metrics.edge_imbalance,
                "vertex_imbalance": self.metrics.vertex_imbalance,
                "replication": self.metrics.replication,
            },
            "run": run_summary,
            "timings": dict(self.timings),
        }
        if self.stream is not None:
            payload["stream"] = dict(self.stream)
        # Present only for traced/mutated runs: other summaries keep
        # their historical byte-identical serialization (goldens).
        if self.trace_path is not None:
            payload["trace"] = self.trace_path
        if self.mutation is not None:
            payload["mutation"] = dict(self.mutation)
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


class Pipeline:
    """Fluent builder: ``source -> partition [-> refine] [-> run]``.

    Every stage setter returns ``self``; :meth:`execute` materializes a
    :class:`PipelineResult`.  Stages accept either full spec strings
    (``"ebv?alpha=2"``) or a bare name plus kwargs (``"ebv", alpha=2``);
    both normalize to the same canonical spec.
    """

    def __init__(self) -> None:
        self._source: Union[str, Graph, EdgeChunkStream, None] = None
        self._source_overrides: Dict[str, Any] = {}
        self._partition_spec: str = "ebv"
        self._partition_overrides: Dict[str, Any] = {}
        self._parts: int = 8
        self._refine: bool = False
        self._refine_options: Dict[str, Any] = {}
        self._app_spec: Optional[str] = None
        self._app_overrides: Dict[str, Any] = {}
        self._backend_spec: str = "serial"
        self._cost_model: Optional[CostModel] = None
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._trace: Optional[str] = None
        self._mutations: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Stage setters
    # ------------------------------------------------------------------

    def source(
        self, source: Union[str, Graph, EdgeChunkStream], **kwargs: Any
    ) -> "Pipeline":
        """Set the graph source: a generator/file/stream spec, a live
        Graph, or a live :class:`~repro.stream.EdgeChunkStream`."""
        if isinstance(source, (Graph, EdgeChunkStream)):
            if kwargs:
                raise SpecError(
                    "kwargs are not accepted with an in-memory source object"
                )
            self._source = source
        else:
            scalars, self._source_overrides = _split_kwargs(kwargs)
            self._source = _merge_spec(source, scalars)
        return self

    @classmethod
    def from_stream(
        cls, stream: Union[str, EdgeChunkStream], **kwargs: Any
    ) -> "Pipeline":
        """Start a pipeline on an out-of-core edge stream.

        ``stream`` is either a live :class:`~repro.stream.EdgeChunkStream`
        or a :data:`~repro.pipeline.STREAMS` spec string
        (``"edgelist?path=huge.txt,chunk_size=65536"``).  The partition
        stage then runs through :func:`repro.stream.stream_partition`
        without materializing the graph; downstream stages (refine, app)
        operate on the partition assembled from the spill shards.
        """
        return cls().source(stream, **kwargs)

    def partition(self, method: str = "ebv", parts: Optional[int] = None, **kwargs: Any) -> "Pipeline":
        """Choose the partition algorithm and the number of subgraphs."""
        scalars, self._partition_overrides = _split_kwargs(kwargs)
        self._partition_spec = _merge_spec(method, scalars)
        if parts is not None:
            if isinstance(parts, bool) or not isinstance(parts, int) or parts < 1:
                raise SpecError(f"parts must be a positive integer, got {parts!r}")
            self._parts = parts
        return self

    def refine(self, enabled: bool = True, **kwargs: Any) -> "Pipeline":
        """Toggle the vertex-cut refinement post-pass (with its kwargs)."""
        self._refine = bool(enabled)
        self._refine_options = dict(kwargs)
        return self

    def run(self, app: str, **kwargs: Any) -> "Pipeline":
        """Choose the application to execute on the partitioned graph.

        Scalar kwargs fold into the serializable spec; object kwargs
        (e.g. a FEATPROP ``features`` matrix) are passed through to the
        program factory directly.
        """
        scalars, self._app_overrides = _split_kwargs(kwargs)
        self._app_spec = _merge_spec(app, scalars)
        return self

    def backend(self, backend: str = "serial", **kwargs: Any) -> "Pipeline":
        """Choose the runtime backend executing the BSP computation stage.

        Accepts full spec strings (``"process?start_method=spawn"``) or
        a bare name plus kwargs; results are identical on every backend
        (see :mod:`repro.runtime`), only wall-clock time changes.
        """
        scalars, objects = _split_kwargs(kwargs)
        if objects:
            raise SpecError(
                f"backend options must be scalars, got objects for {sorted(objects)}"
            )
        self._backend_spec = _merge_spec(backend, scalars)
        return self

    def checkpoint(
        self,
        directory: Optional[str],
        every: int = 1,
        keep: Optional[int] = 2,
    ) -> "Pipeline":
        """Checkpoint the BSP run every ``every`` supersteps into ``directory``.

        Snapshots are atomic and checksummed (see :mod:`repro.checkpoint`);
        the serialized pipeline spec is written alongside them so the run
        can be continued with ``repro resume <directory>`` or
        :func:`resume_pipeline`.  ``keep`` bounds the snapshots retained
        (``None`` keeps all).  Pass ``directory=None`` to disable.
        """
        if directory is None:
            self._checkpoint = None
            return self
        from .spec import _canonical_checkpoint

        self._checkpoint = _canonical_checkpoint(
            {"dir": directory, "every": every, "keep": keep}
        )
        return self

    def trace(self, path: Optional[str]) -> "Pipeline":
        """Record a structured execution trace into ``path``.

        A ``.jsonl`` path selects line-delimited JSON; anything else
        writes Chrome trace-event JSON, loadable in Perfetto — per-worker
        compute/exchange/barrier spans on one timeline row per worker
        (see :mod:`repro.obs`).  Tracing is strictly observational:
        results, deterministic stats and checkpoint fingerprints are
        bit-identical with and without it.  Pass ``None`` to disable
        (the default; a disabled run does no recording work at all).
        """
        if path is not None and (not isinstance(path, str) or not path):
            raise SpecError(
                f"trace path must be None or a non-empty string, got {path!r}"
            )
        self._trace = path
        return self

    def mutate(
        self,
        mutations: Any,
        repartition_threshold: Optional[float] = None,
    ) -> "Pipeline":
        """Apply an edge mutation batch after the partition/refine stages.

        ``mutations`` is a :class:`repro.mutate.MutationBatch`, a
        mutations-file path, an inline op list, or the spec's dict form;
        downstream stages run against the mutated graph and partition
        (see :mod:`repro.mutate`).  Pair with the ``cc-delta``/
        ``pr-delta`` apps to warm-start from the cold base run's values.
        ``repartition_threshold`` tunes the escape hatch (touched-edge
        fraction above which the whole graph is repartitioned).  Pass
        ``mutations=None`` to disable.
        """
        if mutations is None:
            self._mutations = None
            return self
        from ..mutate import MutationBatch
        from .spec import _canonical_mutations

        if isinstance(mutations, MutationBatch):
            mutations = mutations.to_ops()
        normalized = _canonical_mutations(mutations)
        if repartition_threshold is not None:
            normalized = _canonical_mutations(
                {**normalized, "repartition_threshold": repartition_threshold}
            )
        self._mutations = normalized
        return self

    def with_cost_model(self, cost_model: Optional[CostModel] = None, **kwargs: Any) -> "Pipeline":
        """Override the BSP cost model (instance or field overrides)."""
        if cost_model is not None and kwargs:
            raise SpecError("pass either a CostModel instance or field overrides, not both")
        self._cost_model = cost_model if cost_model is not None else CostModel(**kwargs)
        return self

    # ------------------------------------------------------------------
    # Spec round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: PipelineSpec) -> "Pipeline":
        """Hydrate a builder from a validated :class:`PipelineSpec`."""
        pipe = cls()
        pipe._source = spec.source
        pipe._partition_spec = spec.partition
        pipe._parts = spec.parts
        pipe._refine = spec.refine
        pipe._refine_options = dict(spec.refine_options)
        pipe._app_spec = spec.app
        pipe._backend_spec = spec.backend
        pipe._cost_model = spec.build_cost_model()
        pipe._checkpoint = None if spec.checkpoint is None else dict(spec.checkpoint)
        pipe._trace = spec.trace
        pipe._mutations = None if spec.mutations is None else dict(spec.mutations)
        return pipe

    def spec(self) -> PipelineSpec:
        """Serialize the chain to a :class:`PipelineSpec`.

        Raises :class:`SpecError` when the source is an in-memory Graph,
        which has no spec-string representation.
        """
        if self._source is None:
            raise SpecError("pipeline has no source; call .source(...) first")
        if isinstance(self._source, (Graph, EdgeChunkStream)):
            raise SpecError(
                "an in-memory Graph/EdgeChunkStream source cannot be "
                "serialized; use a generator spec, 'file?path=...' or a "
                "stream spec like 'edgelist?path=...'"
            )
        objects = {
            **self._source_overrides,
            **self._partition_overrides,
            **self._app_overrides,
        }
        if objects:
            raise SpecError(
                f"in-memory stage arguments {sorted(objects)} cannot be serialized"
            )
        return PipelineSpec(
            source=self._source,
            partition=self._partition_spec,
            parts=self._parts,
            refine=self._refine,
            refine_options=dict(self._refine_options),
            app=self._app_spec,
            backend=self._backend_spec,
            cost_model=(
                None if self._cost_model is None else dataclasses.asdict(self._cost_model)
            ),
            checkpoint=None if self._checkpoint is None else dict(self._checkpoint),
            trace=self._trace,
            mutations=None if self._mutations is None else dict(self._mutations),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _stream_source(self) -> Optional[Union[str, EdgeChunkStream]]:
        """The stream behind ``source``, or ``None`` for in-memory sources."""
        if isinstance(self._source, EdgeChunkStream):
            return self._source
        if isinstance(self._source, str):
            try:
                if parse_spec(self._source)[0] in STREAMS:
                    return self._source
            except RegistryError:
                pass  # malformed specs fail in the source stage proper
        return None

    def execute(self, resume_from: Optional[str] = None) -> PipelineResult:
        """Run every configured stage and bundle the results.

        ``resume_from`` names a checkpoint root written by a previous
        checkpointed execution of the *same* pipeline: the BSP run
        continues from its newest snapshot (bit-identical to an
        uninterrupted run — a mismatched checkpoint is rejected by its
        fingerprint), and a stream source reuses the already-on-disk
        spill shards instead of re-partitioning.
        """
        timings: Dict[str, float] = {}
        substage_walls: Dict[str, float] = {}
        # One recorder for the whole execution; the null singleton when
        # tracing is off, so the untraced path allocates nothing.
        rec = TraceRecorder(label="pipeline") if self._trace else NULL_RECORDER
        if isinstance(self._source, (Graph, EdgeChunkStream)) or any(
            (self._source_overrides, self._partition_overrides, self._app_overrides)
        ):
            spec = None  # not serializable, still runnable
        else:
            # Eager whole-chain validation: a bad app/partitioner name
            # fails here, before any generation or partitioning work.
            spec = self.spec()

        ckpt = self._checkpoint
        if resume_from is not None:
            if ckpt is None:
                raise SpecError(
                    "resume_from requires a checkpointed pipeline; call "
                    ".checkpoint(...) or set the spec's 'checkpoint' entry"
                )
            if self._app_spec is None:
                raise SpecError("resume_from requires an app stage to resume")
        if ckpt is not None:
            if spec is not None:
                _write_pipeline_spec(ckpt["dir"], spec)
            else:
                # In-memory sources / object overrides cannot be
                # serialized, so no pipeline.json is written and
                # ``repro resume`` will not work for this run.  Engine
                # snapshots are still written — an in-process
                # ``execute(resume_from=...)`` on the same objects
                # resumes fine — but say so up front rather than after
                # the crash.
                warnings.warn(
                    "checkpointing a pipeline whose spec cannot be "
                    "serialized (in-memory source or object stage "
                    "arguments): snapshots will be written but 'repro "
                    "resume' needs pipeline.json; keep the Python "
                    "objects alive and call execute(resume_from=...) "
                    "to resume this run",
                    UserWarning,
                    stacklevel=2,
                )

        def close_stage(name: str, t0: int) -> None:
            """One wall-clock bracket feeds both ``timings`` and the trace:
            every ``timings`` stage becomes a ``pipeline.*`` span."""
            t1 = monotonic_ns()
            timings[name] = (t1 - t0) * 1e-9
            if rec.enabled:
                rec.add(f"pipeline.{name}", t0, t1, cat="pipeline")

        stream_source = self._stream_source()
        stream_info: Optional[Dict[str, Any]] = None
        t0 = monotonic_ns()
        if isinstance(self._source, Graph):
            graph = self._source
        elif stream_source is not None:
            if isinstance(stream_source, EdgeChunkStream):
                stream = stream_source
            else:
                stream = _stage(
                    "source",
                    lambda: STREAMS.create(stream_source, **self._source_overrides),
                )
        else:
            graph = _stage(
                "source",
                lambda: GENERATORS.create(self._source, **self._source_overrides),
            )
        close_stage("source", t0)

        t0 = monotonic_ns()
        partitioner = _stage(
            "partition",
            lambda: PARTITIONERS.create(
                self._partition_spec, **self._partition_overrides
            ),
        )
        if stream_source is not None:

            def spill_and_assemble(spill_dir: str, reuse: bool, overwrite: bool):
                """Shared out-of-core sequence for both spill locations."""
                spilled = None
                if reuse and os.path.isfile(
                    os.path.join(spill_dir, "manifest.json")
                ):
                    try:
                        spilled = SpilledPartition(spill_dir)
                    except StreamError:
                        # A spill damaged by the crash must not block
                        # resume: re-spilling is deterministic, so fall
                        # through to the overwrite path below.
                        spilled = None
                if spilled is None:
                    t1 = monotonic_ns()
                    spilled = _stage(
                        "partition",
                        lambda: stream_partition(
                            stream, partitioner, self._parts, spill_dir,
                            overwrite=overwrite, recorder=rec,
                        ),
                    )
                    substage_walls["partition.spill"] = (monotonic_ns() - t1) * 1e-9
                t1 = monotonic_ns()
                assembled = _stage("partition", spilled.assemble)
                substage_walls["partition.assemble"] = (monotonic_ns() - t1) * 1e-9
                return assembled, dict(spilled.manifest)

            if ckpt is not None:
                # Checkpointed out-of-core path: the spill is persistent
                # (it lives with the snapshots) so a resumed run reuses
                # the already-on-disk shards and skips re-partitioning.
                result, stream_info = spill_and_assemble(
                    os.path.join(ckpt["dir"], SPILL_SUBDIR),
                    reuse=resume_from is not None,
                    overwrite=True,
                )
                stream_info["spill_reused"] = "partition.spill" not in substage_walls
            else:
                # Plain out-of-core path: spill per-part shards to a
                # scratch dir that lives only for this execution.
                with tempfile.TemporaryDirectory(prefix="repro-spill-") as tmp_spill:
                    result, stream_info = spill_and_assemble(
                        tmp_spill, reuse=False, overwrite=False
                    )
            graph = result.graph
        else:
            result = partitioner.partition(graph, self._parts)
        close_stage("partition", t0)

        if self._refine:
            t0 = monotonic_ns()
            result = _stage(
                "refine", lambda: refine_vertex_cut(result, **self._refine_options)
            )
            close_stage("refine", t0)

        mutation_result = None
        mutation_payload: Optional[Dict[str, Any]] = None
        base_result, base_graph = result, graph
        if self._mutations is not None:
            t0 = monotonic_ns()
            from ..mutate import MutationBatch, apply_mutations

            mut_cfg = self._mutations

            def _apply_mutations():
                if "file" in mut_cfg:
                    batch = MutationBatch.from_file(mut_cfg["file"])
                else:
                    batch = MutationBatch.from_ops(mut_cfg["ops"])
                extra: Dict[str, Any] = {}
                if mut_cfg.get("repartition_threshold") is not None:
                    extra["repartition_threshold"] = mut_cfg["repartition_threshold"]
                # The configured partitioner maintains the assignment
                # only when it exposes the warm-seedable streaming core;
                # otherwise apply_mutations falls back to its default
                # (a fresh ebv-stream scorer over the same assignment).
                maintainer = partitioner if hasattr(partitioner, "streamer") else None
                return apply_mutations(result, batch, maintainer, **extra)

            mutation_result = _stage("mutate", _apply_mutations)
            result, graph = mutation_result.partition, mutation_result.graph
            mutation_payload = mutation_result.report()
            close_stage("mutate", t0)

        metrics = partition_metrics(result)

        run = None
        dgraph = None
        if self._app_spec is not None:
            t0 = monotonic_ns()
            dgraph = build_distributed_graph(result)
            close_stage("distribute", t0)
            t0 = monotonic_ns()
            backend = _stage("run", lambda: BACKENDS.create(self._backend_spec))
            app_overrides = dict(self._app_overrides)
            app_name = APPS.canonical(parse_spec(self._app_spec)[0])
            if (
                mutation_result is not None
                and app_name in ("cc-delta", "pr-delta")
                and "prev_values" not in app_overrides
            ):
                # Incremental story in one document: run the base app
                # cold on the pre-mutation partition, derive sound warm
                # values, and let the delta app start from them.
                from ..mutate import cc_warm_labels, pr_warm_values

                base_app = "cc" if app_name == "cc-delta" else "pr"
                seed_run = BSPEngine(
                    cost_model=self._cost_model, backend=backend, recorder=rec
                ).run(
                    build_distributed_graph(base_result),
                    _stage("run", lambda: APPS.create(base_app, base_graph)),
                )
                if app_name == "cc-delta":
                    app_overrides["prev_values"] = cc_warm_labels(
                        seed_run.values, mutation_result
                    )
                else:
                    app_overrides["prev_values"] = pr_warm_values(
                        seed_run.values, graph.num_vertices
                    )
                mutation_payload["seed_supersteps"] = seed_run.num_supersteps
                mutation_payload["seed_messages"] = int(seed_run.total_messages)
            program = _stage(
                "run",
                lambda: APPS.create(self._app_spec, graph, **app_overrides),
            )
            engine = BSPEngine(
                cost_model=self._cost_model,
                backend=backend,
                checkpoint_dir=None if ckpt is None else ckpt["dir"],
                checkpoint_every=1 if ckpt is None else ckpt["every"],
                checkpoint_keep=2 if ckpt is None else ckpt["keep"],
                recorder=rec,
            )
            run = engine.run(dgraph, program, resume_from=resume_from)
            close_stage("run", t0)

        timings["total"] = sum(timings.values())
        # Sub-stage walls; dotted keys so they read as components of
        # their parent stage, not extra stages (they are intentionally
        # excluded from "total").
        timings.update(substage_walls)
        if run is not None:
            for stage, seconds in run.real_stage_seconds().items():
                timings[f"run.{stage}"] = seconds
        trace_path = None
        if self._trace:
            trace_path = write_trace(rec, self._trace)
        return PipelineResult(
            graph=graph,
            partition=result,
            metrics=metrics,
            run=run,
            timings=timings,
            spec=spec,
            distributed=dgraph,
            stream=stream_info,
            checkpoint_dir=None if ckpt is None else ckpt["dir"],
            trace_path=trace_path,
            mutation=mutation_payload,
        )


def _write_pipeline_spec(root: str, spec: PipelineSpec) -> None:
    """Persist the spec into the checkpoint root (atomic tmp + rename)."""
    os.makedirs(root, exist_ok=True)
    final_path = os.path.join(root, PIPELINE_SPEC_FILENAME)
    tmp_path = f"{final_path}.tmp-{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json())
        fh.write("\n")
    os.replace(tmp_path, final_path)


def run_spec(spec: Union[PipelineSpec, Dict[str, Any]]) -> PipelineResult:
    """Execute a whole pipeline from a spec (or its plain-dict form)."""
    if isinstance(spec, dict):
        spec = PipelineSpec.from_dict(spec)
    if not isinstance(spec, PipelineSpec):
        raise SpecError(f"expected a PipelineSpec or dict, got {type(spec).__name__}")
    return Pipeline.from_spec(spec).execute()


def resume_pipeline(root: str) -> PipelineResult:
    """Continue a crashed (or finished) checkpointed pipeline run.

    ``root`` is the checkpoint directory a previous execution wrote:
    ``pipeline.json`` (the serialized spec), ``step-NNNNNN`` snapshots,
    and — for stream sources — the persistent ``spill/`` shards, which
    are reused so resume never re-partitions.  The continued run is
    bit-identical to an uninterrupted one; resuming a run that already
    finished replays nothing and reproduces the recorded result.
    """
    spec_path = os.path.join(root, PIPELINE_SPEC_FILENAME)
    if not os.path.isfile(spec_path):
        raise SpecError(
            f"{root!r} is not a resumable pipeline checkpoint (no "
            f"{PIPELINE_SPEC_FILENAME}); engine-level checkpoints resume via "
            "BSPEngine.run(..., resume_from=...)"
        )
    with open(spec_path, "r", encoding="utf-8") as fh:
        spec = PipelineSpec.from_json(fh.read())
    if spec.app is None:
        raise SpecError(f"{spec_path} configures no app stage; nothing to resume")
    pipe = Pipeline.from_spec(spec)
    # The root may have been renamed/relocated since the spec was
    # written; the directory being resumed always wins.
    ckpt = dict(spec.checkpoint) if spec.checkpoint is not None else {"every": 1, "keep": 2}
    ckpt["dir"] = root
    pipe._checkpoint = ckpt
    return pipe.execute(resume_from=root)
