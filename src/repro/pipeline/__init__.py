"""Unified pipeline API: registries, fluent builder, serializable specs.

This package is the single front door for composing a complete run —
load/generate a graph, partition it, optionally refine, execute an app,
collect metrics — from any scenario (CLI, experiments, benchmarks, a
future server):

* :mod:`repro.pipeline.registry` — the generic :class:`Registry` and the
  ``"name?key=val,..."`` spec grammar;
* :mod:`repro.pipeline.registries` — the concrete component registries
  (:data:`PARTITIONERS`, :data:`APPS`, :data:`GENERATORS`,
  :data:`STREAMS`, :data:`BACKENDS`, :data:`EXPERIMENTS`);
* :mod:`repro.pipeline.spec` — :class:`PipelineSpec`, a whole run as one
  JSON document;
* :mod:`repro.pipeline.builder` — the fluent :class:`Pipeline` builder,
  :class:`PipelineResult`, :func:`run_spec`, and
  :func:`resume_pipeline`, which continues a crashed checkpointed run
  from its newest :mod:`repro.checkpoint` snapshot (``repro resume``).
"""

from .builder import Pipeline, PipelineResult, resume_pipeline, run_spec
from .registries import APPS, BACKENDS, EXPERIMENTS, GENERATORS, PARTITIONERS, STREAMS
from .registry import (
    DuplicateComponentError,
    Registry,
    RegistryError,
    RegistryView,
    UnknownComponentError,
    format_spec,
    parse_spec,
)
from .spec import PipelineSpec, SpecError

__all__ = [
    "Pipeline",
    "PipelineResult",
    "run_spec",
    "resume_pipeline",
    "APPS",
    "BACKENDS",
    "EXPERIMENTS",
    "GENERATORS",
    "STREAMS",
    "PARTITIONERS",
    "Registry",
    "RegistryView",
    "RegistryError",
    "DuplicateComponentError",
    "UnknownComponentError",
    "parse_spec",
    "format_spec",
    "PipelineSpec",
    "SpecError",
]
