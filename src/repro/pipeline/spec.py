"""Serializable pipeline run specifications.

A :class:`PipelineSpec` is one JSON document describing a complete run —
graph source, partitioner, refinement, application and cost model — the
substrate for batch sweeps, the ``python -m repro pipeline`` subcommand
and any future serving layer.  Construction validates eagerly: every
component spec must parse and resolve against its registry, so a
malformed document fails with a precise message instead of halfway
through a run.

Component spec strings are normalized to canonical form (sorted options,
lower-cased names) on construction, which makes
``PipelineSpec.from_dict(spec.to_dict())`` byte-stable and lets a spec
built through the fluent :class:`~repro.pipeline.builder.Pipeline`
compare equal to one loaded from JSON.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..bsp import CostModel
from .registries import APPS, BACKENDS, GENERATORS, PARTITIONERS, STREAMS
from .registry import RegistryError, format_spec, parse_spec

__all__ = ["PipelineSpec", "SpecError"]


class SpecError(ValueError):
    """A pipeline spec document is malformed or references unknown parts."""


_COST_MODEL_FIELDS = tuple(f.name for f in dataclasses.fields(CostModel))


def _canonical_component(value: Any, registry, label: str) -> str:
    """Validate one component spec string against ``registry``."""
    if not isinstance(value, str):
        raise SpecError(f"{label!r} must be a spec string, got {type(value).__name__}")
    try:
        name, kwargs = parse_spec(value)
        registry.canonical(name)
    except RegistryError as exc:
        raise SpecError(f"invalid {label!r} spec: {exc}") from exc
    return format_spec(registry.canonical(name), kwargs)


def _canonical_source(value: Any) -> tuple:
    """Validate a source spec against GENERATORS, then STREAMS.

    Returns ``(canonical_spec, is_stream)``.  The two registries share
    no names, so the first registry that answers wins; an unknown name
    reports the names of both families.
    """
    if not isinstance(value, str):
        raise SpecError(f"'source' must be a spec string, got {type(value).__name__}")
    try:
        name, kwargs = parse_spec(value)
    except RegistryError as exc:
        raise SpecError(f"invalid 'source' spec: {exc}") from exc
    for registry, is_stream in ((GENERATORS, False), (STREAMS, True)):
        if name in registry:
            return format_spec(registry.canonical(name), kwargs), is_stream
    raise SpecError(
        f"invalid 'source' spec: unknown source {name!r}; available "
        f"generators: {', '.join(GENERATORS.names())}; available streams: "
        f"{', '.join(STREAMS.names())}"
    )


#: checkpoint-config keys and their (default, validator) pairs.
_CHECKPOINT_DEFAULTS = {"every": 1, "keep": 2}


def _canonical_checkpoint(value: Any) -> Optional[Dict[str, Any]]:
    """Validate/normalize the ``checkpoint`` entry.

    Accepts ``None``, a bare directory string, or a dict with ``dir``
    (required) plus optional ``every``/``keep``; always returns the
    fully-populated dict form so ``to_dict`` round-trips byte-stably.
    """
    if value is None:
        return None
    if isinstance(value, str):
        value = {"dir": value}
    if not isinstance(value, dict):
        raise SpecError(
            f"'checkpoint' must be null, a directory string, or an options "
            f"dict, got {type(value).__name__}"
        )
    unknown = sorted(set(value) - ({"dir"} | set(_CHECKPOINT_DEFAULTS)))
    if unknown:
        raise SpecError(
            f"unknown checkpoint keys {unknown}; expected a subset of "
            f"['dir', 'every', 'keep']"
        )
    directory = value.get("dir")
    if not isinstance(directory, str) or not directory:
        raise SpecError("'checkpoint' requires a non-empty 'dir' string")
    normalized: Dict[str, Any] = {"dir": directory}
    for key, default in _CHECKPOINT_DEFAULTS.items():
        item = value.get(key, default)
        if key == "keep" and item is None:
            normalized[key] = None  # retain every snapshot
            continue
        if isinstance(item, bool) or not isinstance(item, int) or item < 1:
            raise SpecError(
                f"checkpoint {key!r} must be an integer >= 1"
                f"{' or null (keep all)' if key == 'keep' else ''}, got {item!r}"
            )
        normalized[key] = item
    return normalized


def _canonical_mutations(value: Any) -> Optional[Dict[str, Any]]:
    """Validate/normalize the ``mutations`` entry.

    Accepts ``None``, a mutations-file path string, a bare op list
    (``[["insert", u, v], ["delete", u, v], ...]``), or a dict with
    exactly one of ``file``/``ops`` plus an optional
    ``repartition_threshold``.  Inline ops are validated by actually
    building the :class:`repro.mutate.MutationBatch` and re-serialized
    in its canonical op form; a file path is resolved lazily at
    execution time (the spec stays portable across machines).
    """
    if value is None:
        return None
    from ..mutate import MutationBatch, MutationError

    if isinstance(value, str):
        value = {"file": value}
    elif isinstance(value, (list, tuple)):
        value = {"ops": list(value)}
    if not isinstance(value, dict):
        raise SpecError(
            f"'mutations' must be null, a file path, an op list, or an "
            f"options dict, got {type(value).__name__}"
        )
    unknown = sorted(set(value) - {"file", "ops", "repartition_threshold"})
    if unknown:
        raise SpecError(
            f"unknown mutations keys {unknown}; expected a subset of "
            f"['file', 'ops', 'repartition_threshold']"
        )
    has_file, has_ops = "file" in value, "ops" in value
    if has_file == has_ops:
        raise SpecError("'mutations' requires exactly one of 'file' or 'ops'")
    normalized: Dict[str, Any] = {}
    if has_file:
        path = value["file"]
        if not isinstance(path, str) or not path:
            raise SpecError("mutations 'file' must be a non-empty path string")
        normalized["file"] = path
    else:
        try:
            normalized["ops"] = MutationBatch.from_ops(value["ops"]).to_ops()
        except (MutationError, TypeError, ValueError) as exc:
            raise SpecError(f"invalid 'mutations' ops: {exc}") from exc
    threshold = value.get("repartition_threshold")
    if threshold is not None:
        if (
            isinstance(threshold, bool)
            or not isinstance(threshold, (int, float))
            or not 0.0 <= threshold <= 1.0
        ):
            raise SpecError(
                f"mutations 'repartition_threshold' must be a number in "
                f"[0, 1], got {threshold!r}"
            )
        normalized["repartition_threshold"] = float(threshold)
    return normalized


def _check_stream_partitioner(partition_spec: str) -> None:
    """Eagerly reject stream sources with non-streaming partitioners."""
    name, kwargs = parse_spec(partition_spec)
    factory = PARTITIONERS.get(name)
    checker = getattr(factory, "stream_capable", None)
    capable = (
        checker(**kwargs) if checker is not None
        else bool(getattr(factory, "supports_stream", False))
    )
    if not capable:
        streaming = [
            n for n, f in PARTITIONERS.items()
            if getattr(f, "supports_stream", False)
        ]
        raise SpecError(
            f"partitioner spec {partition_spec!r} cannot consume a stream "
            f"source; streaming-capable partitioners: {', '.join(streaming)} "
            "(ebv-sharded only with sort_edges=false)"
        )


@dataclass
class PipelineSpec:
    """One pipeline run as data: ``source -> partition [-> refine] [-> app]``.

    Attributes
    ----------
    source:
        Generator spec (``"powerlaw?vertices=20000,eta=2.2"``), file
        source (``"file?path=graph.txt"``), or an out-of-core stream
        source (``"edgelist?path=huge.txt,chunk_size=65536"``,
        ``"npy?path=huge.npy"``; see :data:`repro.pipeline.STREAMS`).
        A stream source runs the partition stage out of core through
        :func:`repro.stream.stream_partition` and therefore requires a
        streaming-capable partitioner (``ebv-stream``, or
        ``ebv-sharded?sort_edges=false``).
    partition:
        Partitioner spec (``"ebv?alpha=2,sort_order=input"``).
    parts:
        Number of subgraphs / BSP workers.
    refine:
        Whether to apply the vertex-cut refinement post-pass.
    refine_options:
        Keyword arguments for :func:`repro.partition.refine_vertex_cut`
        (``alpha``, ``beta``, ``max_passes``, ``seed``).  A dict passed
        as ``refine`` is accepted and normalized to ``refine=True`` plus
        options.
    app:
        Optional application spec (``"pr?pagerank_iters=10"``); when
        ``None`` the pipeline stops after partition metrics.
    backend:
        Runtime backend spec for the BSP computation stage
        (``"serial"``, ``"thread"``, ``"process?start_method=spawn"``;
        see :mod:`repro.runtime`).  Backends change wall-clock time
        only — results are identical across all of them.
    cost_model:
        Optional :class:`~repro.bsp.CostModel` overrides by field name.
    checkpoint:
        Optional superstep-granular checkpointing of the BSP run (see
        :mod:`repro.checkpoint`): a directory string or a dict with
        ``dir`` (required), ``every`` (snapshot cadence in supersteps,
        default 1) and ``keep`` (snapshots retained, default 2).  The
        executed pipeline writes its own spec to ``<dir>/pipeline.json``
        so ``repro resume <dir>`` can rebuild and continue the run; a
        stream source spills its shards under ``<dir>/spill`` and resume
        reuses them, skipping the re-partition entirely.
    trace:
        Optional output path for a structured execution trace (see
        :mod:`repro.obs`): a ``.jsonl`` path selects line-delimited
        JSON, anything else Chrome trace-event JSON (Perfetto-loadable).
        Tracing is strictly observational — results, deterministic
        stats and checkpoint fingerprints are bit-identical with and
        without it.
    mutations:
        Optional edge mutation batch (see :mod:`repro.mutate`) applied
        to the partition after the partition/refine stages: a mutations
        file path, an inline op list (``[["insert", u, v], ["delete",
        u, v]]``), or a dict with one of ``file``/``ops`` plus an
        optional ``repartition_threshold``.  Downstream stages (metrics
        and the app) run against the *mutated* graph and partition;
        pairing mutations with the ``cc-delta``/``pr-delta`` apps makes
        the pipeline first run the base app cold on the pre-mutation
        partition and warm-start the delta app from its values.
    """

    source: str
    partition: str = "ebv"
    parts: int = 8
    refine: bool = False
    refine_options: Dict[str, Any] = field(default_factory=dict)
    app: Optional[str] = None
    backend: str = "serial"
    cost_model: Optional[Dict[str, float]] = None
    checkpoint: Optional[Dict[str, Any]] = None
    trace: Optional[str] = None
    mutations: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        self.source, self._source_is_stream = _canonical_source(self.source)
        self.partition = _canonical_component(self.partition, PARTITIONERS, "partition")
        if self._source_is_stream:
            _check_stream_partitioner(self.partition)
        if isinstance(self.refine, dict):
            self.refine_options = dict(self.refine)
            self.refine = True
        if not isinstance(self.refine, bool):
            raise SpecError(
                f"'refine' must be a bool or an options dict, got {self.refine!r}"
            )
        if not isinstance(self.refine_options, dict):
            raise SpecError("'refine_options' must be a dict")
        if isinstance(self.parts, bool) or not isinstance(self.parts, int):
            raise SpecError(f"'parts' must be an integer, got {self.parts!r}")
        if self.parts < 1:
            raise SpecError(f"'parts' must be >= 1, got {self.parts}")
        if self.app is not None:
            self.app = _canonical_component(self.app, APPS, "app")
        self.backend = _canonical_component(self.backend, BACKENDS, "backend")
        self.checkpoint = _canonical_checkpoint(self.checkpoint)
        self.mutations = _canonical_mutations(self.mutations)
        if self.trace is not None and (
            not isinstance(self.trace, str) or not self.trace
        ):
            raise SpecError(
                f"'trace' must be null or a non-empty output path, got {self.trace!r}"
            )
        if self.cost_model is not None:
            if not isinstance(self.cost_model, dict):
                raise SpecError("'cost_model' must be a dict of CostModel fields")
            unknown = sorted(set(self.cost_model) - set(_COST_MODEL_FIELDS))
            if unknown:
                raise SpecError(
                    f"unknown cost_model fields {unknown}; "
                    f"expected a subset of {list(_COST_MODEL_FIELDS)}"
                )

    @property
    def source_is_stream(self) -> bool:
        """True when ``source`` names an out-of-core stream reader."""
        return self._source_is_stream

    # ------------------------------------------------------------------
    # Round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelineSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise SpecError(f"pipeline spec must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(f"unknown pipeline spec keys {unknown}; expected a subset of {sorted(known)}")
        if "source" not in data:
            raise SpecError("pipeline spec requires a 'source' entry")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        """Parse a JSON document into a validated spec."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"pipeline spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical plain-dict form (inverse of :meth:`from_dict`)."""
        out = {
            "source": self.source,
            "partition": self.partition,
            "parts": self.parts,
            "refine": self.refine,
            "refine_options": dict(self.refine_options),
            "app": self.app,
            "backend": self.backend,
            "cost_model": None if self.cost_model is None else dict(self.cost_model),
            "checkpoint": None if self.checkpoint is None else dict(self.checkpoint),
        }
        # Emitted only when set: untraced/unmutated specs keep their
        # historical byte-identical serialization (committed goldens).
        if self.trace is not None:
            out["trace"] = self.trace
        if self.mutations is not None:
            out["mutations"] = dict(self.mutations)
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def build_cost_model(self) -> Optional[CostModel]:
        """Materialize the cost-model overrides (``None`` when unset)."""
        if self.cost_model is None:
            return None
        return CostModel(**self.cost_model)
