"""Generic component registry and the ``"name?key=val,..."`` spec grammar.

Every pluggable component family (partitioners, apps, graph generators,
experiment drivers) is addressed through one :class:`Registry`: a named
mapping from canonical component names (plus aliases) to zero-or-more-
argument factories.  Components are referenced by *spec strings*::

    "ebv"                            # bare name
    "ebv?alpha=2,sort_order=input"   # name + constructor kwargs
    "powerlaw?vertices=20000,eta=2.2"

so that any component is addressable from config files, CLI flags and
JSON pipeline specs without hard-coded dispatch tables.  Values are
coerced ``int`` → ``float`` → ``bool``/``none`` → ``str``, which covers
every constructor in the code base.

Registries reject duplicate names, resolve lookups case-insensitively,
and raise :class:`UnknownComponentError` listing the available names so
CLI and spec errors are self-documenting.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Registry",
    "RegistryView",
    "RegistryError",
    "DuplicateComponentError",
    "UnknownComponentError",
    "parse_spec",
    "format_spec",
]


class RegistryError(ValueError):
    """Base error for registry lookups and spec parsing."""


class DuplicateComponentError(RegistryError):
    """A name or alias was registered twice."""


class UnknownComponentError(RegistryError):
    """A spec referenced a name no registry entry answers to."""


def _coerce(text: str) -> Any:
    """Parse one spec value: int, then float, then bool/none, else str.

    Quoting opts out of coercion: ``path='123'`` stays the string
    ``"123"`` (for file paths or names that look like numbers).
    """
    if len(text) >= 2 and text[0] == text[-1] and text[0] in ("'", '"'):
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _render(value: Any) -> str:
    """Inverse of :func:`_coerce` for round-trippable spec strings."""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "none"
    if isinstance(value, str) and not isinstance(_coerce(value), str):
        return f"'{value}'"  # would coerce to a non-string: quote it
    return str(value)


def parse_spec(spec: str) -> Tuple[str, Dict[str, Any]]:
    """Split ``"name?key=val,key2=val2"`` into ``(name, kwargs)``.

    Raises :class:`RegistryError` with a precise message on malformed
    input: empty name, dangling ``?``, or an option without ``=``.
    """
    if not isinstance(spec, str):
        raise RegistryError(f"component spec must be a string, got {type(spec).__name__}")
    name, sep, rest = spec.partition("?")
    name = name.strip().lower()
    if not name:
        raise RegistryError(f"component spec {spec!r} has an empty name")
    kwargs: Dict[str, Any] = {}
    if sep:
        if not rest.strip():
            raise RegistryError(f"component spec {spec!r} has a dangling '?'")
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise RegistryError(
                    f"malformed option {item!r} in spec {spec!r}; expected key=value"
                )
            kwargs[key] = _coerce(value.strip())
    return name, kwargs


def format_spec(name: str, kwargs: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical spec string for ``(name, kwargs)``: sorted, lower-cased.

    ``parse_spec(format_spec(*parse_spec(s)))`` is idempotent, which is
    what makes :class:`~repro.pipeline.spec.PipelineSpec` round-trips
    byte-stable.
    """
    name = name.strip().lower()
    if not kwargs:
        return name
    options = ",".join(f"{k}={_render(kwargs[k])}" for k in sorted(kwargs))
    return f"{name}?{options}"


class Registry:
    """A named family of component factories addressable by spec string.

    Parameters
    ----------
    kind:
        Human-readable family name ("partitioner", "app", ...) used in
        error messages.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}
        self._aliases: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        aliases: Tuple[str, ...] = (),
    ):
        """Register ``factory`` under ``name`` (plus optional aliases).

        Usable directly (``reg.register("ebv", EBVPartitioner)``) or as a
        decorator (``@reg.register("ebv-unsort")``).  Duplicate names or
        aliases raise :class:`DuplicateComponentError`.
        """
        if factory is None:
            def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
                self.register(name, fn, aliases=aliases)
                return fn

            return decorator
        canonical = name.strip().lower()
        if not canonical:
            raise RegistryError(f"cannot register an empty {self.kind} name")
        for candidate in (canonical, *[a.strip().lower() for a in aliases]):
            if candidate in self._factories or candidate in self._aliases:
                raise DuplicateComponentError(
                    f"{self.kind} {candidate!r} is already registered"
                )
        self._factories[canonical] = factory
        for alias in aliases:
            self._aliases[alias.strip().lower()] = canonical
        return factory

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve a name or alias (case-insensitive) to its canonical form."""
        key = name.strip().lower()
        if key in self._factories:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise UnknownComponentError(
            f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
        )

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name`` (or one of its aliases)."""
        return self._factories[self.canonical(name)]

    def create(self, spec: str, *args: Any, **overrides: Any) -> Any:
        """Parse ``spec`` and instantiate: ``factory(*args, **kwargs)``.

        Keyword arguments given directly override same-named options
        parsed from the spec string.
        """
        name, kwargs = parse_spec(spec)
        kwargs.update(overrides)
        return self.get(name)(*args, **kwargs)

    def names(self) -> Tuple[str, ...]:
        """Sorted canonical names (aliases excluded)."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        try:
            self.canonical(name)
        except UnknownComponentError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def items(self):
        """``(canonical name, factory)`` pairs, sorted by name."""
        return [(name, self._factories[name]) for name in self.names()]

    def describe(self):
        """``(name, one-line description)`` pairs for catalog listings.

        A factory exposing a ``describe()`` classmethod (lint rules do)
        is asked directly; otherwise the first docstring line is used.
        Powers ``repro lint --list-rules`` and keeps any future
        ``--list-*`` flag one call away for the other families.
        """
        rows = []
        for name, factory in self.items():
            describe = getattr(factory, "describe", None)
            if callable(describe):
                text = describe()
            else:
                text = (factory.__doc__ or "").strip().splitlines()[0] if factory.__doc__ else ""
            rows.append((name, text))
        return rows

    def as_view(self) -> "RegistryView":
        """A live, read-only mapping over the canonical factories.

        Used by deprecation shims (e.g. ``repro.cli.PARTITIONERS``) so
        legacy dict-style consumers keep working without freezing a copy
        that could drift from the registry.
        """
        return RegistryView(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry(kind={self.kind!r}, names={list(self.names())})"


class RegistryView(Mapping):
    """Read-only ``Mapping`` facade over a :class:`Registry`."""

    def __init__(self, registry: Registry):
        self._registry = registry

    def __getitem__(self, name: str) -> Callable[..., Any]:
        try:
            return self._registry.get(name)
        except UnknownComponentError as exc:
            raise KeyError(name) from exc

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)
