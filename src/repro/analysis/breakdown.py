"""Superstep breakdown analysis: Table II and the Figure 4 timeline.

Section V-B instruments CC with 4 workers on LiveJournal and reports,
per partition algorithm: ``comp`` (average per-worker computation time),
``comm`` (average communication time), ``ΔC`` (accumulated max−min
busy-time spread, i.e. synchronization waiting), and total execution
time.  :class:`BreakdownRow` extracts exactly those quantities from a
:class:`~repro.bsp.BSPRun`; :func:`render_timeline` draws the Figure 4
per-worker Gantt chart as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..bsp import BSPRun
from .tables import render_table

__all__ = ["BreakdownRow", "breakdown_row", "render_breakdown_table", "render_timeline"]


@dataclass
class BreakdownRow:
    """One Table II row (seconds are simulated; see the cost model)."""

    method: str
    comp: float
    comm: float
    delta_c: float
    execution_time: float


def breakdown_row(run: BSPRun) -> BreakdownRow:
    """Extract the Table II quantities from a finished run."""
    return BreakdownRow(
        method=run.partition_method,
        comp=run.comp,
        comm=run.comm,
        delta_c=run.delta_c,
        execution_time=run.execution_time,
    )


def render_breakdown_table(rows: Sequence[BreakdownRow], title: str = "") -> str:
    """Render rows in the Table II layout."""
    return render_table(
        ["Method", "comp", "comm", "dC", "Execution time"],
        [(r.method, r.comp, r.comm, r.delta_c, r.execution_time) for r in rows],
        title=title,
        float_fmt="{:.4f}",
    )


def render_timeline(run: BSPRun, width: int = 72) -> str:
    """Figure 4 as text: one lane per worker, supersteps left to right.

    Each worker's lane shows computation (``#``), communication (``%``)
    and synchronization waiting (``.``) in proportion to modeled time.
    """
    timelines = run.worker_timeline()
    total = run.execution_time
    if total <= 0:
        return f"{run.partition_method}: empty run"
    lines: List[str] = [
        f"{run.partition_method} — {run.program} on {run.graph_name} "
        f"({run.num_workers} workers, {run.num_supersteps} supersteps; "
        f"#=comp %=comm .=sync)"
    ]
    for worker, lanes in enumerate(timelines):
        cells: List[str] = []
        for comp, comm, sync in lanes:
            for amount, glyph in ((comp, "#"), (comm, "%"), (sync, ".")):
                n = int(round(width * amount / total))
                cells.append(glyph * n)
        lane = "".join(cells)[:width]
        lines.append(f"  worker {worker}: {lane.ljust(width)}|")
    return "\n".join(lines)
