"""Small text-table renderer shared by every experiment driver.

The paper's artifacts are tables and figures; since this reproduction is
terminal-first, figures are rendered as aligned text series (and the
benchmark harness prints them), so everything lands in one place:
stdout and the EXPERIMENTS.md transcript.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["render_table", "format_sci"]

Cell = Union[str, int, float]


def format_sci(x: float) -> str:
    """Format like the paper's Table IV: ``4.05 × 10^7`` → ``4.05e+07``."""
    return f"{x:.2e}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned monospace table with a separator under headers."""
    str_rows: List[List[str]] = []
    for row in rows:
        out: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                out.append(float_fmt.format(cell))
            else:
                out.append(str(cell))
        str_rows.append(out)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
