"""Analysis and reporting: breakdowns, message statistics, text tables."""

from .plotting import ascii_curve, ascii_multi_curve
from .communication import (
    per_worker_sync_messages,
    quotient_graph,
    replica_sync_volume,
)
from .breakdown import (
    BreakdownRow,
    breakdown_row,
    render_breakdown_table,
    render_timeline,
)
from .messages import (
    MessageStats,
    message_stats,
    render_max_mean_table,
    render_message_table,
)
from .tables import format_sci, render_table

__all__ = [
    "ascii_curve",
    "ascii_multi_curve",
    "per_worker_sync_messages",
    "quotient_graph",
    "replica_sync_volume",
    "BreakdownRow",
    "breakdown_row",
    "render_breakdown_table",
    "render_timeline",
    "MessageStats",
    "message_stats",
    "render_max_mean_table",
    "render_message_table",
    "format_sci",
    "render_table",
]
