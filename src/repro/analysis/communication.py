"""Static communication analysis of a partition (no execution needed).

Tables IV/V measure communication by *running* CC; this module derives
the same quantities analytically from the partition structure, which is
what a practitioner wants when choosing a partitioner before any job
runs:

* :func:`replica_sync_volume` — messages one full replica synchronization
  costs (every mirror pushes + every master broadcasts), the per-
  superstep communication of an all-active program like PageRank.
* :func:`per_worker_sync_messages` — the same, split per worker, whose
  max/mean predicts Table V.
* :func:`quotient_graph` — the worker-level communication topology:
  ``quotient[i, j]`` = number of vertices replicated on both workers i
  and j (the channels a superstep exercises).
"""

from __future__ import annotations


import numpy as np

from ..partition.base import PartitionResult

__all__ = [
    "replica_sync_volume",
    "per_worker_sync_messages",
    "quotient_graph",
]


def _replica_lists(result: PartitionResult):
    return result.replica_map()


def replica_sync_volume(result: PartitionResult) -> int:
    """Messages per full replica sync: ``2 · Σ_v (|parts(v)| − 1)``.

    Every mirror pushes one message up and receives one broadcast back.
    This equals the PageRank per-superstep message count upper bound and
    is monotone in the replication factor — the analytic form of the
    Table IV correlation.
    """
    total = 0
    for parts in _replica_lists(result):
        if parts.size > 1:
            total += 2 * (parts.size - 1)
    return total


def per_worker_sync_messages(result: PartitionResult) -> np.ndarray:
    """Messages each worker *sends* in one full replica sync.

    Mirrors send one message each; the master sends one broadcast per
    mirror.  Masters are placed like the runtime places them: on the
    replica holding the most of the vertex's edges (ties to the lowest
    worker id).
    """
    from ..bsp.distributed import _master_assignment

    masters = _master_assignment(result)
    sent = np.zeros(result.num_parts, dtype=np.int64)
    for v, parts in enumerate(_replica_lists(result)):
        if parts.size <= 1:
            continue
        master = int(masters[v]) if masters[v] >= 0 else int(parts[0])
        for p in parts.tolist():
            if p == master:
                sent[p] += parts.size - 1  # broadcast to each mirror
            else:
                sent[p] += 1  # mirror push
    return sent


def quotient_graph(result: PartitionResult) -> np.ndarray:
    """Worker-pair communication channels: shared replicated vertices.

    Returns a symmetric ``(p, p)`` matrix whose off-diagonal entry
    ``[i, j]`` counts vertices replicated on both workers; the diagonal
    is zero.  Dense rows identify workers that talk to everyone — the
    hub-concentration failure NE exhibits on power-law graphs.
    """
    p = result.num_parts
    q = np.zeros((p, p), dtype=np.int64)
    for parts in _replica_lists(result):
        plist = parts.tolist()
        for a in range(len(plist)):
            for b in range(a + 1, len(plist)):
                q[plist[a], plist[b]] += 1
                q[plist[b], plist[a]] += 1
    return q
