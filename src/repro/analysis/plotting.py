"""Terminal plotting: ASCII line charts for figure-style series.

The paper's figures are log-scale line charts; in a terminal-first
reproduction we render them as ASCII.  Used by the examples and
available to users inspecting their own sweeps.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["ascii_curve", "ascii_multi_curve"]

_GLYPHS = "*o+x#@%&"


def ascii_curve(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 10,
) -> str:
    """Render one (x, y) series as an ASCII line chart."""
    return ascii_multi_curve({"": (x, y)}, width=width, height=height)


def ascii_multi_curve(
    series: Dict[str, Sequence],
    width: int = 64,
    height: int = 12,
    logy: bool = False,
) -> str:
    """Render several named (x, y) series in one chart with a legend.

    Parameters
    ----------
    series:
        Mapping of label → ``(x, y)`` arrays.  All series share axes.
    logy:
        Plot ``log10(y)`` (the paper's figures use log-scale time axes).
    """
    if not series:
        raise ValueError("series must not be empty")
    xs = {k: np.asarray(v[0], dtype=np.float64) for k, v in series.items()}
    ys = {k: np.asarray(v[1], dtype=np.float64) for k, v in series.items()}
    for k in ys:
        if xs[k].shape != ys[k].shape or xs[k].size == 0:
            raise ValueError(f"series {k!r} must be equal-length, non-empty")
        if logy:
            ys[k] = np.log10(np.maximum(ys[k], 1e-300))
    x_lo = min(float(v.min()) for v in xs.values())
    x_hi = max(float(v.max()) for v in xs.values())
    y_lo = min(float(v.min()) for v in ys.values())
    y_hi = max(float(v.max()) for v in ys.values())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, xv) in enumerate(xs.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        yv = ys[label]
        order = np.argsort(xv)
        xv, yv = xv[order], yv[order]
        for col in range(width):
            xq = x_lo + (x_hi - x_lo) * col / max(width - 1, 1)
            yq = float(np.interp(xq, xv, yv))
            row = height - 1 - int(
                round((height - 1) * (yq - y_lo) / (y_hi - y_lo))
            )
            grid[row][col] = glyph
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    axis = "log10(y)" if logy else "y"
    lines.append(f"x: {x_lo:g} .. {x_hi:g}   {axis}: {y_lo:.3g} .. {y_hi:.3g}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={label}"
        for i, label in enumerate(series)
        if label
    )
    if legend:
        lines.append(legend)
    return "\n".join(lines)
