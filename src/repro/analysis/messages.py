"""Message statistics: the platform-independent metrics of Tables IV & V.

The paper's key methodological move is using the *number of
communication messages* as a platform-independent proxy for both total
communication volume (Table IV, which tracks the replication factor)
and workload imbalance (Table V's max/mean ratio, which tracks the
edge/vertex imbalance factors).  This module extracts both from
:class:`~repro.bsp.BSPRun` records and renders the tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..bsp import BSPRun
from .tables import format_sci, render_table

__all__ = [
    "MessageStats",
    "message_stats",
    "render_message_table",
    "render_max_mean_table",
]


@dataclass
class MessageStats:
    """Message-level summary of one run (one Table IV/V cell pair)."""

    method: str
    graph: str
    total_messages: int
    max_mean_ratio: float
    replication_factor: Optional[float] = None
    edge_imbalance: Optional[float] = None
    vertex_imbalance: Optional[float] = None


def message_stats(
    run: BSPRun,
    replication_factor: Optional[float] = None,
    edge_imbalance: Optional[float] = None,
    vertex_imbalance: Optional[float] = None,
) -> MessageStats:
    """Build a :class:`MessageStats`, optionally annotated with Table III metrics."""
    return MessageStats(
        method=run.partition_method,
        graph=run.graph_name,
        total_messages=run.total_messages,
        max_mean_ratio=run.message_max_mean_ratio,
        replication_factor=replication_factor,
        edge_imbalance=edge_imbalance,
        vertex_imbalance=vertex_imbalance,
    )


def render_message_table(stats: Sequence[MessageStats], title: str = "") -> str:
    """Table IV: totals with the replication factor in parentheses."""
    rows = []
    for s in stats:
        total = format_sci(float(s.total_messages))
        if s.replication_factor is not None:
            total = f"{total} ({s.replication_factor:.2f})"
        rows.append((s.graph, s.method, total))
    return render_table(["Graph", "Method", "Total messages (RF)"], rows, title=title)


def render_max_mean_table(stats: Sequence[MessageStats], title: str = "") -> str:
    """Table V: max/mean ratios with imbalance factors in parentheses."""
    rows = []
    for s in stats:
        cell = f"{s.max_mean_ratio:.3f}"
        if s.edge_imbalance is not None and s.vertex_imbalance is not None:
            cell = f"{cell} ({s.edge_imbalance:.2f}/{s.vertex_imbalance:.2f})"
        rows.append((s.graph, s.method, cell))
    return render_table(
        ["Graph", "Method", "max/mean (edge-imb/vert-imb)"], rows, title=title
    )
