"""HDRF: High-Degree (are) Replicated First, Petroni et al., CIKM 2015.

A streaming vertex-cut discussed in the paper's related work.  For each
edge ``(u, v)`` HDRF scores every partition with a replication term that
prefers co-locating the *lower*-degree endpoint (so high-degree hubs are
the ones replicated) plus a balance term, using *partial* degrees
accumulated over the stream:

    θ_u = δ(u) / (δ(u) + δ(v))
    g(w, i) = 1 + (1 - θ_w)   if w ∈ keep[i] else 0
    score(i) = g(u, i) + g(v, i) + λ · (maxsize − ecount[i]) / (ε + maxsize − minsize)

The edge goes to the highest-scoring partition.  λ trades replication
for balance exactly like EBV's α (HDRF has no vertex-balance analogue of
β, which is the gap the paper exploits).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult

__all__ = ["HDRFPartitioner"]


class HDRFPartitioner(Partitioner):
    """Streaming HDRF edge partitioner.

    Parameters
    ----------
    lam:
        Balance weight λ (HDRF's paper default is ~1).
    epsilon:
        Small constant keeping the balance term finite when all
        partitions are equal.
    """

    name = "HDRF"

    def __init__(self, lam: float = 1.0, epsilon: float = 1.0):
        if lam < 0:
            raise ValueError("lam must be non-negative")
        self.lam = float(lam)
        self.epsilon = float(epsilon)

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """One pass over the edge stream in input order."""
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        n = graph.num_vertices
        edge_parts = np.full(m, -1, dtype=np.int64)
        if num_parts == 1:
            edge_parts[:] = 0
            return PartitionResult(
                graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
                method=self.name,
            )
        partial_degree = np.zeros(n, dtype=np.int64)
        ecount = np.zeros(num_parts, dtype=np.float64)
        parts_of = [[] for _ in range(n)]
        score = np.empty(num_parts, dtype=np.float64)
        src, dst = graph.src, graph.dst
        for e in range(m):
            u, v = int(src[e]), int(dst[e])
            partial_degree[u] += 1
            partial_degree[v] += 1
            du, dv = partial_degree[u], partial_degree[v]
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            maxsize = ecount.max()
            minsize = ecount.min()
            np.multiply(
                maxsize - ecount,
                self.lam / (self.epsilon + maxsize - minsize),
                out=score,
            )
            pu, pv = parts_of[u], parts_of[v]
            if pu:
                score[pu] += 1.0 + (1.0 - theta_u)
            if pv and u != v:
                score[pv] += 1.0 + (1.0 - theta_v)
            i = int(np.argmax(score))
            edge_parts[e] = i
            ecount[i] += 1
            if i not in pu:
                pu.append(i)
            if u != v and i not in pv:
                pv.append(i)
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
            method=self.name,
        )
