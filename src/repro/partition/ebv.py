"""EBV: the Efficient and Balanced Vertex-cut partitioner (Algorithm 1).

EBV processes edges one at a time and assigns edge ``(u, v)`` to the
subgraph ``i`` minimizing the evaluation function (Eq. 2)::

    Eva_(u,v)(i) = I(u ∉ keep[i]) + I(v ∉ keep[i])
                 + α · ecount[i] / (|E| / p)
                 + β · vcount[i] / (|V| / p)

The two indicator terms penalize creating new vertex replicas (driving
the replication factor down) while the α and β terms penalize edge and
vertex count imbalance (driving both imbalance factors toward 1).  Ties
are broken toward the lowest subgraph id, matching ``arg min``.

Before partitioning, the *sorting preprocessing* (Section IV-C) orders
edges by ascending sum of end-vertex degrees, so low-degree edges are
spread evenly as per-subgraph "seeds" before high-degree hubs arrive.
The ``sort_order`` knob also supports the ablations from DESIGN.md (A3):
descending, random, and raw input order.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult

__all__ = ["EBVPartitioner", "SORT_ORDERS", "edge_processing_order"]

SORT_ORDERS = ("ascending", "descending", "random", "input")


def edge_processing_order(
    graph: Graph, sort_order: str = "ascending", seed: int = 0
) -> np.ndarray:
    """Return the edge permutation used by EBV's preprocessing.

    ``ascending`` is the paper's EBV-sort (stable sort by the sum of
    end-vertex total degrees); ``input`` is EBV-unsort; ``descending``
    and ``random`` exist for the sorting ablation.
    """
    if sort_order not in SORT_ORDERS:
        raise ValueError(f"sort_order must be one of {SORT_ORDERS}")
    if sort_order == "input":
        return np.arange(graph.num_edges, dtype=np.int64)
    if sort_order == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(graph.num_edges).astype(np.int64)
    degrees = graph.degrees()
    key = degrees[graph.src] + degrees[graph.dst]
    order = np.argsort(key, kind="stable")
    if sort_order == "descending":
        order = order[::-1]
    return order.astype(np.int64)


class EBVPartitioner(Partitioner):
    """Efficient and Balanced Vertex-cut partitioner.

    Parameters
    ----------
    alpha:
        Weight of the edge-balance term (default 1, per Section IV-C).
    beta:
        Weight of the vertex-balance term (default 1).
    sort_order:
        One of :data:`SORT_ORDERS`; ``"ascending"`` is EBV-sort (the
        paper default) and ``"input"`` is EBV-unsort.
    track_growth:
        When ``True``, record ``Σ_i |V_i|`` after every assigned edge so
        the Figure 5 replication-factor growth curve can be plotted; the
        trace is exposed as :attr:`last_trace`.
    seed:
        Only used by the ``"random"`` sort order.
    """

    name = "EBV"

    def __init__(
        self,
        alpha: float = 1.0,
        beta: float = 1.0,
        sort_order: str = "ascending",
        track_growth: bool = False,
        seed: int = 0,
    ):
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if sort_order not in SORT_ORDERS:
            raise ValueError(f"sort_order must be one of {SORT_ORDERS}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.sort_order = sort_order
        self.track_growth = bool(track_growth)
        self.seed = seed
        #: after :meth:`partition` with ``track_growth=True``: int64 array
        #: whose ``m``-th entry is ``Σ_i |V_i|`` after ``m+1`` edges.
        self.last_trace: Optional[np.ndarray] = None

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Run Algorithm 1 and return the vertex-cut partition."""
        edge_parts, trace = self._run(graph, num_parts)
        self.last_trace = trace
        suffix = "-sort" if self.sort_order == "ascending" else (
            "-unsort" if self.sort_order == "input" else f"-{self.sort_order}"
        )
        return PartitionResult(
            graph,
            num_parts,
            edge_parts=edge_parts,
            kind=VERTEX_CUT,
            method=f"{self.name}{suffix}" if suffix != "-sort" else self.name,
        )

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------

    def _run(
        self, graph: Graph, num_parts: int
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        n = graph.num_vertices
        order = edge_processing_order(graph, self.sort_order, self.seed)
        edge_parts = np.full(m, -1, dtype=np.int64)
        if num_parts == 1:
            edge_parts[:] = 0
            trace = None
            if self.track_growth and m:
                # With one part, V_1 grows as distinct endpoints appear.
                seen = np.zeros(n, dtype=bool)
                trace = np.zeros(m, dtype=np.int64)
                count = 0
                for t, e in enumerate(order.tolist()):
                    for w in (int(graph.src[e]), int(graph.dst[e])):
                        if not seen[w]:
                            seen[w] = True
                            count += 1
                    trace[t] = count
            return edge_parts, trace

        # Per-part balance term, updated incrementally:
        #   balance[i] = α·ecount[i]/(|E|/p) + β·vcount[i]/(|V|/p)
        balance = np.zeros(num_parts, dtype=np.float64)
        edge_unit = self.alpha / (m / num_parts) if m else 0.0
        vertex_unit = self.beta / (n / num_parts)
        # parts_of[v]: list of part ids whose keep-set contains v.
        parts_of = [[] for _ in range(n)]
        trace = np.zeros(m, dtype=np.int64) if self.track_growth else None
        covered = 0

        src = graph.src
        dst = graph.dst
        eva = np.empty(num_parts, dtype=np.float64)
        for t, e in enumerate(order.tolist()):
            u = int(src[e])
            v = int(dst[e])
            pu = parts_of[u]
            pv = parts_of[v]
            # Eva[i] = balance[i] + 2 - I(u∈keep[i]) - I(v∈keep[i])
            np.add(balance, 2.0, out=eva)
            if pu:
                eva[pu] -= 1.0
            if pv:
                eva[pv] -= 1.0
            i = int(np.argmin(eva))
            edge_parts[e] = i
            balance[i] += edge_unit
            if i not in pu:
                pu.append(i)
                balance[i] += vertex_unit
                covered += 1
            if u != v and i not in pv:
                pv.append(i)
                balance[i] += vertex_unit
                covered += 1
            if trace is not None:
                trace[t] = covered
        return edge_parts, trace

    # ------------------------------------------------------------------
    # Figure 5 support
    # ------------------------------------------------------------------

    def growth_curve(
        self, graph: Graph, max_points: int = 512
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(edges_processed, replication_factor)`` sample arrays.

        Requires :meth:`partition` to have been called with
        ``track_growth=True``.  Down-samples the per-edge trace to at most
        ``max_points`` points for plotting/reporting.
        """
        if self.last_trace is None:
            raise RuntimeError("partition(..) with track_growth=True must run first")
        m = self.last_trace.shape[0]
        idx = np.unique(np.linspace(0, m - 1, num=min(max_points, m)).astype(np.int64))
        x = idx + 1
        y = self.last_trace[idx] / graph.num_vertices
        return x, y
