"""Partition persistence: save/load edge assignments with integrity checks.

A production deployment partitions once and runs many jobs, so the
assignment must round-trip through storage.  The format is a small
header (kind, method, p, graph fingerprint) followed by one part id per
line — trivially consumable by external loaders — and loading verifies
the fingerprint so a partition cannot silently be applied to the wrong
graph.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..graph import Graph
from .base import EDGE_CUT, VERTEX_CUT, PartitionResult

__all__ = ["save_partition", "load_partition", "graph_fingerprint"]

_MAGIC = "repro-partition-v1"


def graph_fingerprint(graph: Graph) -> str:
    """Cheap structural fingerprint: crc32 over (V, E, edge arrays)."""
    crc = zlib.crc32(np.ascontiguousarray(graph.src).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(graph.dst).tobytes(), crc)
    return f"{graph.num_vertices}:{graph.num_edges}:{crc:08x}"


def save_partition(result: PartitionResult, path: str) -> None:
    """Write a partition to ``path`` (text, one part id per line)."""
    ids = result.edge_parts if result.kind == VERTEX_CUT else result.vertex_parts
    with open(path, "w", encoding="ascii") as fh:
        fh.write(
            f"# {_MAGIC} kind={result.kind} method={result.method} "
            f"parts={result.num_parts} graph={graph_fingerprint(result.graph)}\n"
        )
        for part in ids.tolist():
            fh.write(f"{part}\n")


def load_partition(path: str, graph: Graph) -> PartitionResult:
    """Load a partition saved by :func:`save_partition` for ``graph``.

    Raises ``ValueError`` if the file is not a partition file or if its
    fingerprint does not match ``graph`` (wrong or modified graph).
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip()
        if not header.startswith(f"# {_MAGIC}"):
            raise ValueError(f"{path} is not a repro partition file")
        fields = dict(
            token.split("=", 1) for token in header[2:].split()[1:]
        )
        kind = fields["kind"]
        num_parts = int(fields["parts"])
        expected = fields["graph"]
        actual = graph_fingerprint(graph)
        if expected != actual:
            raise ValueError(
                f"partition fingerprint mismatch: file has {expected}, "
                f"graph is {actual}"
            )
        ids = np.loadtxt(fh, dtype=np.int64, ndmin=1)
    if kind == VERTEX_CUT:
        return PartitionResult(
            graph, num_parts, edge_parts=ids, kind=VERTEX_CUT,
            method=fields.get("method", "loaded"),
        )
    if kind == EDGE_CUT:
        return PartitionResult(
            graph, num_parts, vertex_parts=ids, kind=EDGE_CUT,
            method=fields.get("method", "loaded"),
        )
    raise ValueError(f"unknown partition kind {kind!r} in {path}")
