"""Partition quality metrics from Section III-C, plus the Theorem 1/2 bounds.

Three metrics drive the whole evaluation:

* **edge imbalance factor** ``max_i |E_i| / (|E|/p)``;
* **vertex imbalance factor** ``max_i |V_i| / (Σ_i |V_i| / p)``;
* **replication factor** ``Σ_i |V_i| / |V|`` for vertex-cut and
  ``Σ_i |E_i| / |E|`` for edge-cut.

Theorems 1 and 2 give worst-case upper bounds on the two imbalance
factors for EBV as a function of the hyperparameters α and β; they are
implemented here so property tests and the bound-tightness ablation can
check measured values against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import VERTEX_CUT, PartitionResult

__all__ = [
    "edge_imbalance_factor",
    "vertex_imbalance_factor",
    "replication_factor",
    "theorem1_edge_imbalance_bound",
    "theorem2_vertex_imbalance_bound",
    "PartitionMetrics",
    "partition_metrics",
]


def edge_imbalance_factor(result: PartitionResult) -> float:
    """``max_i |E_i| / (|E| / p)``; 1.0 is perfectly balanced."""
    counts = result.edge_counts()
    total = result.graph.num_edges
    if total == 0:
        return 1.0
    return float(counts.max() / (total / result.num_parts))


def vertex_imbalance_factor(result: PartitionResult) -> float:
    """``max_i |V_i| / (Σ_j |V_j| / p)``; 1.0 is perfectly balanced."""
    counts = result.vertex_counts()
    total = int(counts.sum())
    if total == 0:
        return 1.0
    return float(counts.max() / (total / result.num_parts))


def replication_factor(result: PartitionResult) -> float:
    """Average number of replicas per vertex (vertex-cut) or edge (edge-cut).

    Section III-C: vertex-cut uses ``Σ|V_i| / |V|``; for edge-cut
    ``Σ|V_i| = |V|`` identically, so ``Σ|E_i| / |E|`` is used instead.
    """
    if result.kind == VERTEX_CUT:
        covered = int(result.vertex_counts().sum())
        return covered / result.graph.num_vertices
    return float(result.edge_counts().sum() / max(result.graph.num_edges, 1))


def theorem1_edge_imbalance_bound(
    num_edges: int, num_vertices: int, num_parts: int, alpha: float, beta: float
) -> float:
    """Theorem 1 upper bound on EBV's edge imbalance factor.

    ``1 + (p-1)/|E| * (1 + floor(2|E|/(αp) + (β/α)|E|))``.
    """
    if num_edges <= 0:
        return 1.0
    inner = math.floor(2 * num_edges / (alpha * num_parts) + (beta / alpha) * num_edges)
    return 1.0 + (num_parts - 1) / num_edges * (1 + inner)


def theorem2_vertex_imbalance_bound(
    num_vertices: int, covered_vertices: int, num_parts: int, alpha: float, beta: float
) -> float:
    """Theorem 2 upper bound on EBV's vertex imbalance factor.

    ``1 + (p-1)/Σ|V_j| * (1 + floor(2|V|/(βp) + (α/β)|V|))`` where
    ``covered_vertices`` is ``Σ_j |V_j|`` from the finished partition.
    """
    if covered_vertices <= 0:
        return 1.0
    inner = math.floor(
        2 * num_vertices / (beta * num_parts) + (alpha / beta) * num_vertices
    )
    return 1.0 + (num_parts - 1) / covered_vertices * (1 + inner)


@dataclass
class PartitionMetrics:
    """One Table III cell group: the three metrics for one partition."""

    method: str
    graph: str
    num_parts: int
    edge_imbalance: float
    vertex_imbalance: float
    replication: float

    def as_row(self) -> str:
        return (
            f"{self.method:<10}{self.graph:<14}{self.num_parts:>4}"
            f"{self.edge_imbalance:>8.2f}{self.vertex_imbalance:>8.2f}"
            f"{self.replication:>8.2f}"
        )


def partition_metrics(result: PartitionResult) -> PartitionMetrics:
    """Compute all Table III metrics for a finished partition."""
    return PartitionMetrics(
        method=result.method,
        graph=result.graph.name,
        num_parts=result.num_parts,
        edge_imbalance=edge_imbalance_factor(result),
        vertex_imbalance=vertex_imbalance_factor(result),
        replication=replication_factor(result),
    )
