"""Degree-Based Hashing (DBH), Xie et al., NeurIPS 2014.

DBH is a one-pass self-based vertex-cut: edge ``(u, v)`` is placed by
hashing the id of its *lower-degree* endpoint.  High-degree hub vertices
are thereby the ones that get cut (replicated), which both bounds the
replication factor on power-law graphs and yields near-perfect edge
balance — but its replication factor is well above greedy methods like
EBV because it never looks at where replicas already live.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult
from .hashing import mix64

__all__ = ["DBHPartitioner"]


class DBHPartitioner(Partitioner):
    """Degree-Based Hashing edge partitioner.

    Parameters
    ----------
    seed:
        Hash seed; different seeds give independent random placements.
    """

    name = "DBH"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Hash each edge on its lower-degree endpoint (ties: smaller id)."""
        degrees = graph.degrees()
        du = degrees[graph.src]
        dv = degrees[graph.dst]
        pick_src = (du < dv) | ((du == dv) & (graph.src <= graph.dst))
        low_vertex = np.where(pick_src, graph.src, graph.dst)
        parts = (mix64(low_vertex, self.seed) % np.uint64(num_parts)).astype(np.int64)
        return PartitionResult(
            graph, num_parts, edge_parts=parts, kind=VERTEX_CUT, method=self.name
        )
