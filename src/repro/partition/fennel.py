"""Fennel: streaming vertex partitioning, Tsourakakis et al., WSDM 2014.

Fennel is the greedy streaming *edge-cut* framework the paper's related
work cites as the inspiration behind Ginger.  Vertices arrive in stream
order; each is placed on the partition maximizing

    |N(v) ∩ V_i| − α · γ · |V_i|^(γ−1)

with the interpolation parameters γ = 1.5 and α = √p · |E| / |V|^1.5
from the original paper.  Like METIS it balances vertex counts only, so
it exhibits the same edge-imbalance failure mode on power-law graphs —
a useful second data point for the paper's local-based-vs-self-based
argument.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import Graph
from .base import EDGE_CUT, Partitioner, PartitionResult
from .hashing import mix64

__all__ = ["FennelPartitioner"]


class FennelPartitioner(Partitioner):
    """One-pass Fennel vertex placement.

    Parameters
    ----------
    gamma:
        Balance-cost exponent (paper default 1.5).
    alpha:
        Balance-cost scale; ``None`` uses the paper's
        ``sqrt(p) · |E| / |V|^1.5``.
    slack:
        Hard capacity multiplier: no partition may exceed
        ``slack · |V| / p`` vertices (Fennel uses ν = 1.1).
    shuffle:
        Visit vertices in hashed order rather than id order, emulating
        random stream arrival.
    """

    name = "Fennel"

    def __init__(
        self,
        gamma: float = 1.5,
        alpha: Optional[float] = None,
        slack: float = 1.1,
        shuffle: bool = True,
        seed: int = 0,
    ):
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        if alpha is not None and alpha <= 0:
            raise ValueError("alpha must be positive when given")
        if slack < 1.0:
            raise ValueError("slack must be >= 1")
        if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
            raise TypeError("seed must be an integer")
        self.gamma = float(gamma)
        self.alpha = None if alpha is None else float(alpha)
        self.slack = float(slack)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Stream vertices once, placing each greedily."""
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        n = graph.num_vertices
        m = max(graph.num_edges, 1)
        alpha = self.alpha
        if alpha is None:
            alpha = np.sqrt(num_parts) * m / max(n, 1) ** 1.5
        capacity = self.slack * n / num_parts

        order = np.arange(n, dtype=np.int64)
        if self.shuffle:
            order = order[np.argsort(mix64(order, self.seed))]
        parts = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(num_parts, dtype=np.float64)
        out = graph.out_index()
        inn = graph.in_index()
        score = np.empty(num_parts, dtype=np.float64)
        for v in order.tolist():
            score.fill(0.0)
            for nbrs in (out.neighbors_of(v), inn.neighbors_of(v)):
                placed = parts[nbrs]
                placed = placed[placed >= 0]
                if placed.size:
                    np.add.at(score, placed, 1.0)
            score -= alpha * self.gamma * np.power(sizes, self.gamma - 1.0)
            over = sizes + 1 > capacity
            if over.all():
                i = int(np.argmin(sizes))
            else:
                score[over] = -np.inf
                i = int(np.argmax(score))
            parts[v] = i
            sizes[i] += 1.0
        return PartitionResult(
            graph, num_parts, vertex_parts=parts, kind=EDGE_CUT, method=self.name
        )
