"""Greedy local-search refinement for vertex-cut partitions.

Section VII lists "other potential optimization strategies ... which
could reduce the total communication volume and the communication
imbalance further" as future work.  This module implements the natural
one: a post-pass over an existing edge assignment that relocates single
edges whenever doing so lowers the global EBV-style objective

    F = Σ_v |parts(v)|                      (total replicas)
      + α/(2|E|/p) · Σ_i ecount[i]²          (edge balance potential)
      + β/(2|V|/p) · Σ_i vcount[i]²          (vertex balance potential)

The quadratic balance potentials have the property that a move's Δ is
cheap to evaluate incrementally and that F strictly decreases with each
accepted move, so the pass terminates.  The replica term needs per-
(vertex, partition) incident-edge counts, maintained in a dict that
only ever holds strictly positive counts — candidate-part probes are
read-only ``dict.get`` calls, and a count that drops to zero is deleted,
so the dict never accumulates O(m·p) phantom zero entries.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .base import VERTEX_CUT, PartitionResult

__all__ = ["refine_vertex_cut"]


def _refine_edge_parts(
    graph,
    edge_parts: np.ndarray,
    p: int,
    alpha: float,
    beta: float,
    max_passes: int,
    seed: int,
):
    """Core refinement loop; returns ``(edge_parts, incident, ecount, vcount)``.

    Exposed separately so property tests can inspect the final incident
    state (it must hold positive counts only).
    """
    m = graph.num_edges
    n = graph.num_vertices
    src, dst = graph.src, graph.dst

    incident: Dict[Tuple[int, int], int] = {}
    ecount = np.zeros(p, dtype=np.int64)
    vcount = np.zeros(p, dtype=np.int64)
    for e in range(m):
        a = int(edge_parts[e])
        ecount[a] += 1
        u0, v0 = int(src[e]), int(dst[e])
        # Dedupe self-loop endpoints without a set: iteration order must
        # not depend on hash order.
        for w in (u0,) if u0 == v0 else (u0, v0):
            c = incident.get((w, a), 0)
            if c == 0:
                vcount[a] += 1
            incident[(w, a)] = c + 1

    edge_scale = alpha / (m / p)
    vertex_scale = beta / (n / p)
    rng = np.random.default_rng(seed)

    for _ in range(max_passes):
        moved = 0
        for e in rng.permutation(m).tolist():
            a = int(edge_parts[e])
            u, v = int(src[e]), int(dst[e])
            endpoints = {u, v}
            # Replicas freed in `a` if this is the endpoint's last edge there.
            freed = sum(1 for w in endpoints if incident[(w, a)] == 1)
            best_delta = 0.0
            best_b = -1
            for b in range(p):
                if b == a:
                    continue
                created = sum(
                    1 for w in endpoints if incident.get((w, b), 0) == 0
                )
                delta = created - freed
                delta += edge_scale * (ecount[b] - ecount[a] + 1)
                # Vertex-balance potential: Σ vcount² changes by
                # (vcount[b]+created)² - vcount[b]²
                # + (vcount[a]-freed)² - vcount[a]².
                delta += vertex_scale * 0.5 * (
                    (vcount[b] + created) ** 2 - vcount[b] ** 2
                    + (vcount[a] - freed) ** 2 - vcount[a] ** 2
                )
                if delta < best_delta - 1e-12:
                    best_delta = delta
                    best_b = b
            if best_b < 0:
                continue
            b = best_b
            edge_parts[e] = b
            ecount[a] -= 1
            ecount[b] += 1
            for w in endpoints:
                ca = incident[(w, a)] - 1
                if ca == 0:
                    del incident[(w, a)]
                    vcount[a] -= 1
                else:
                    incident[(w, a)] = ca
                cb = incident.get((w, b), 0)
                if cb == 0:
                    vcount[b] += 1
                incident[(w, b)] = cb + 1
            moved += 1
        if moved == 0:
            break
    return edge_parts, incident, ecount, vcount


def refine_vertex_cut(
    result: PartitionResult,
    alpha: float = 1.0,
    beta: float = 1.0,
    max_passes: int = 3,
    seed: int = 0,
) -> PartitionResult:
    """Return a refined copy of a vertex-cut partition.

    Parameters
    ----------
    result:
        Any vertex-cut :class:`PartitionResult` (EBV, DBH, ...).
    alpha, beta:
        Balance-potential weights, mirroring EBV's hyperparameters.
    max_passes:
        Upper bound on sweeps over the edge list; each pass visits edges
        in a seeded random order and stops early when no move helps.
    """
    if result.kind != VERTEX_CUT:
        raise ValueError("refinement applies to vertex-cut partitions only")
    graph = result.graph
    p = result.num_parts
    if p == 1 or graph.num_edges == 0:
        return result
    edge_parts, _, _, _ = _refine_edge_parts(
        graph, result.edge_parts.copy(), p, alpha, beta, max_passes, seed
    )
    return PartitionResult(
        graph,
        p,
        edge_parts=edge_parts,
        kind=VERTEX_CUT,
        method=f"{result.method}+refine",
    )
