"""Neighbor Expansion (NE), Zhang et al., KDD 2017.

NE is a *local-based* vertex-cut: it grows each subgraph by repeatedly
moving the most promising boundary vertex into a core set and allocating
its incident edges, which preserves local structure and yields very low
replication factors.  Subgraphs are filled one at a time up to an exact
edge capacity ``|E|/p``, so the edge imbalance factor is ~1 by
construction — but nothing bounds how many *vertices* a subgraph
touches, which is exactly the failure mode the paper demonstrates on
power-law graphs (vertex imbalance factors of 2.1–3.6 in Table III).

The boundary heuristic follows the paper: expand the boundary vertex
with the fewest unassigned ("external") incident edges, seeding from the
globally minimum-degree unassigned vertex when the boundary is empty.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult

__all__ = ["NEPartitioner"]


class _Incidence:
    """CSR of edge ids incident to each vertex (either endpoint)."""

    def __init__(self, graph: Graph):
        n = graph.num_vertices
        endpoints = np.concatenate([graph.src, graph.dst])
        edge_ids = np.concatenate(
            [np.arange(graph.num_edges), np.arange(graph.num_edges)]
        )
        # Self loops would appear twice; drop the duplicate occurrence.
        dup = np.zeros(endpoints.shape[0], dtype=bool)
        loops = graph.src == graph.dst
        dup[graph.num_edges :] = loops
        endpoints = endpoints[~dup]
        edge_ids = edge_ids[~dup]
        order = np.argsort(endpoints, kind="stable")
        self.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(endpoints, minlength=n), out=self.indptr[1:])
        self.edge_ids = edge_ids[order]

    def edges_of(self, v: int) -> np.ndarray:
        return self.edge_ids[self.indptr[v] : self.indptr[v + 1]]


class NEPartitioner(Partitioner):
    """Neighbor-expansion edge partitioner.

    Parameters
    ----------
    seed:
        Reserved for tie-breaking randomization (the implementation is
        deterministic; the seed only perturbs the seed-vertex ordering).
    """

    name = "NE"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Grow ``num_parts`` subgraphs to an exact edge capacity each."""
        m = graph.num_edges
        n = graph.num_vertices
        edge_parts = np.full(m, -1, dtype=np.int64)
        if num_parts == 1:
            edge_parts[:] = 0
            return PartitionResult(
                graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT, method=self.name
            )
        incidence = _Incidence(graph)
        # Unassigned incident edges per vertex; derived from the incidence
        # index (NOT graph.degrees(), which counts self loops twice while
        # the incidence stores them once).
        ext_deg = np.diff(incidence.indptr).copy()
        rng = np.random.default_rng(self.seed)
        # Global seed order: ascending degree with random tie-break.
        seed_order = np.lexsort((rng.random(n), ext_deg))
        seed_ptr = 0
        src = graph.src
        dst = graph.dst
        assigned = 0

        for k in range(num_parts):
            remaining_parts = num_parts - k
            capacity = (m - assigned + remaining_parts - 1) // remaining_parts
            if capacity <= 0:
                continue
            count = 0
            boundary: List = []  # heap of (ext_deg_snapshot, vertex)
            in_core = set()

            def push(v: int) -> None:
                if ext_deg[v] > 0:
                    heapq.heappush(boundary, (int(ext_deg[v]), v))

            while count < capacity and assigned < m:
                x = -1
                while boundary:
                    d, cand = heapq.heappop(boundary)
                    if cand in in_core or ext_deg[cand] == 0:
                        continue  # stale entry
                    if d != ext_deg[cand]:
                        heapq.heappush(boundary, (int(ext_deg[cand]), cand))
                        continue
                    x = cand
                    break
                if x < 0:
                    # Boundary exhausted: seed from the global min-degree
                    # vertex with unassigned edges.  ext_deg > 0 implies
                    # at least one unassigned incident edge (both are
                    # maintained from the incidence index), so a seed
                    # always makes progress.
                    while seed_ptr < n and ext_deg[seed_order[seed_ptr]] == 0:
                        seed_ptr += 1
                    if seed_ptr >= n:
                        break
                    x = int(seed_order[seed_ptr])
                in_core.add(x)
                for e in incidence.edges_of(x).tolist():
                    if edge_parts[e] >= 0:
                        continue
                    edge_parts[e] = k
                    assigned += 1
                    count += 1
                    u, v = int(src[e]), int(dst[e])
                    ext_deg[u] -= 1
                    if v != u:
                        ext_deg[v] -= 1
                    y = v if x == u else u
                    if y not in in_core:
                        push(y)
                    if count >= capacity:
                        break
        # Any stragglers (disconnected leftovers) go to the last part.
        edge_parts[edge_parts < 0] = num_parts - 1
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT, method=self.name
        )
