"""Graph partitioners: EBV (the paper's contribution) and all baselines.

Algorithms are instantiated directly from this package or, preferably,
by name through :data:`repro.pipeline.registries.PARTITIONERS` — the
registry the CLI, the fluent pipeline builder and the experiment
drivers all share (``PARTITIONERS.create("ebv?alpha=2")``).
"""

from .base import EDGE_CUT, VERTEX_CUT, Partitioner, PartitionResult
from .cvc import CVCPartitioner, grid_shape
from .dbh import DBHPartitioner
from .ebv import EBVPartitioner, SORT_ORDERS, edge_processing_order
from .fennel import FennelPartitioner
from .ginger import GingerPartitioner
from .metislike import MetisLikePartitioner
from .metrics import (
    PartitionMetrics,
    edge_imbalance_factor,
    partition_metrics,
    replication_factor,
    theorem1_edge_imbalance_bound,
    theorem2_vertex_imbalance_bound,
    vertex_imbalance_factor,
)
from .ne import NEPartitioner
from .hdrf import HDRFPartitioner
from .io import graph_fingerprint, load_partition, save_partition
from .random_hash import RandomEdgeHashPartitioner, RandomVertexHashPartitioner
from .refine import refine_vertex_cut
from .streaming import ShardedEBVPartitioner, StreamingEBVPartitioner

__all__ = [
    "EDGE_CUT",
    "VERTEX_CUT",
    "Partitioner",
    "PartitionResult",
    "CVCPartitioner",
    "grid_shape",
    "DBHPartitioner",
    "EBVPartitioner",
    "FennelPartitioner",
    "SORT_ORDERS",
    "edge_processing_order",
    "GingerPartitioner",
    "MetisLikePartitioner",
    "NEPartitioner",
    "HDRFPartitioner",
    "graph_fingerprint",
    "load_partition",
    "save_partition",
    "RandomEdgeHashPartitioner",
    "RandomVertexHashPartitioner",
    "refine_vertex_cut",
    "ShardedEBVPartitioner",
    "StreamingEBVPartitioner",
    "PartitionMetrics",
    "edge_imbalance_factor",
    "partition_metrics",
    "replication_factor",
    "theorem1_edge_imbalance_bound",
    "theorem2_vertex_imbalance_bound",
    "vertex_imbalance_factor",
]

#: Registry used by experiment drivers: the six algorithms of the paper.
PAPER_PARTITIONERS = {
    "EBV": EBVPartitioner,
    "Ginger": GingerPartitioner,
    "DBH": DBHPartitioner,
    "CVC": CVCPartitioner,
    "NE": NEPartitioner,
    "METIS": MetisLikePartitioner,
}
