"""Streaming and distributed EBV — the paper's stated future work.

Section VII: "EBV is a sequential and offline partition algorithm.  We
might need to extend it to the distributed and streaming environment to
handle larger graphs."  This module provides both extensions:

* :class:`StreamingEBVPartitioner` — a one-pass variant that never sees
  the whole edge list.  Edges arrive in chunks; degrees are *estimated
  online* from the prefix seen so far, each chunk is sorted by the
  estimated degree sum (a windowed approximation of the offline sorting
  preprocessing, in the spirit of ADWISE's bounded look-ahead), and the
  EBV evaluation function assigns the chunk.  Exact |E| and |V| are not
  known mid-stream, so the balance terms normalize by the *running*
  counts instead — the same greedy score, computable online.

* :class:`ShardedEBVPartitioner` — a simulated distributed EBV: ``k``
  partitioner workers each own a shard of the edge stream and run EBV
  against a private snapshot of the global state (``keep``/``ecount``/
  ``vcount``), merging snapshots every ``sync_interval`` edges.  Larger
  intervals mean staler state and a higher replication factor; the
  ablation bench quantifies that staleness cost.

Both algorithms are backed by *assigner* cores
(:class:`StreamingEBVAssigner`, :class:`ShardedEBVAssigner`) that
consume bare ``(src, dst)`` edge chunks and never touch a
:class:`~repro.graph.Graph`.  The classic :meth:`Partitioner.partition`
entry points feed the cores from the in-memory edge arrays; the
out-of-core driver in :mod:`repro.stream` feeds them from disk — both
paths produce byte-identical assignments (enforced by
``tests/stream/test_stream_equivalence.py``).

The assigner contract (what :func:`repro.stream.stream_partition`
relies on):

* ``window`` — the number of edges per :meth:`assign` call the core
  expects; the driver re-buffers arbitrary reader chunks into windows
  of exactly this size (the final window may be short), so assignment
  results are independent of the on-disk chunking.
* ``assign(src, dst)`` — assign one window, returning the part id of
  every edge *in input order*.
* ``replication_factor()`` — current replication factor of the
  assignment so far, computable from the core's own state without any
  graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult

__all__ = [
    "StreamingEBVPartitioner",
    "ShardedEBVPartitioner",
    "StreamingEBVAssigner",
    "ShardedEBVAssigner",
]


class StreamingEBVAssigner:
    """Chunk-consuming core of :class:`StreamingEBVPartitioner`.

    Holds the full streaming state — online degree estimates, per-vertex
    replica sets, per-part balance scores — in O(vertices seen) memory,
    growing lazily as new vertex ids appear, so it can be driven either
    from in-memory arrays or from an on-disk stream of unknown extent.
    """

    def __init__(self, num_parts: int, chunk_size: int, alpha: float, beta: float):
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        self.num_parts = int(num_parts)
        self.window = int(chunk_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._seen_degree = np.zeros(0, dtype=np.int64)
        self._parts_of: List[List[int]] = []
        self._ecount = np.zeros(self.num_parts, dtype=np.float64)
        self._vcount = np.zeros(self.num_parts, dtype=np.float64)
        self._eva = np.empty(self.num_parts, dtype=np.float64)
        self.edges_assigned = 0
        #: (vertex, part) incidences — Σ_v |parts_of[v]|
        self.vertices_covered = 0
        #: distinct vertices holding at least one replica
        self.vertices_seen = 0

    def _grow(self, needed: int) -> None:
        if needed > len(self._parts_of):
            self._parts_of.extend([] for _ in range(needed - len(self._parts_of)))
        if needed > self._seen_degree.shape[0]:
            # capacity doubles so repeated growth stays amortized O(1)
            grown = np.zeros(
                max(needed, 2 * self._seen_degree.shape[0]), dtype=np.int64
            )
            grown[: self._seen_degree.shape[0]] = self._seen_degree
            self._seen_degree = grown

    def seed(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        parts: np.ndarray,
        num_vertices: Optional[int] = None,
    ) -> None:
        """Warm-start the core from an existing edge assignment.

        Rebuilds the whole streaming state — degree estimates, replica
        sets, balance counters — as if every ``(src[i], dst[i])`` edge
        had already been assigned to ``parts[i]``, in O(|E|) vectorized
        work.  Subsequent :meth:`assign` calls then score *new* edges
        against the live partition instead of an empty one, which is
        what lets :func:`repro.mutate.apply_mutations` re-assign only
        the inserted edges of a mutation batch.

        The seeded state is equivalent for all future scoring (replica
        membership and per-part counters), not a byte replay of the
        original assignment history.  Only a fresh assigner may be
        seeded.
        """
        if self.edges_assigned or self.vertices_covered:
            raise ValueError("seed() requires a fresh assigner (no edges assigned yet)")
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        parts = np.ascontiguousarray(parts, dtype=np.int64)
        if not (src.shape == dst.shape == parts.shape):
            raise ValueError("src, dst and parts must have identical shapes")
        if parts.shape[0] and (parts.min() < 0 or parts.max() >= self.num_parts):
            raise ValueError(
                f"seed parts must lie in [0, {self.num_parts}); "
                f"got range [{int(parts.min())}, {int(parts.max())}]"
            )
        m = src.shape[0]
        n = int(num_vertices) if num_vertices is not None else 0
        if m:
            n = max(n, int(max(src.max(), dst.max())) + 1)
        if m == 0:
            if n:
                self._grow(n)
            return
        seen_degree = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
        # Distinct (vertex, part) incidences; self-loops collapse to one.
        pair_keys = np.unique(
            np.concatenate([src, dst]) * self.num_parts + np.tile(parts, 2)
        )
        self.seed_state(
            seen_degree,
            pair_keys // self.num_parts,
            pair_keys % self.num_parts,
            np.bincount(parts, minlength=self.num_parts),
            m,
        )

    def seed_state(
        self,
        seen_degree: np.ndarray,
        pair_vertex: np.ndarray,
        pair_part: np.ndarray,
        edge_counts: np.ndarray,
        num_edges: int,
    ) -> None:
        """Warm-start from precomputed aggregates (out-of-core seeding).

        The aggregate form of :meth:`seed`, for callers that stream the
        existing assignment shard by shard and cannot hold full edge
        arrays: per-vertex degrees, the distinct ``(vertex, part)``
        incidence pairs, per-part edge counts and the total edge count.
        ``pair_vertex``/``pair_part`` must be parallel and deduplicated.
        """
        if self.edges_assigned or self.vertices_covered:
            raise ValueError("seed_state() requires a fresh assigner")
        seen_degree = np.ascontiguousarray(seen_degree, dtype=np.int64)
        pair_vertex = np.ascontiguousarray(pair_vertex, dtype=np.int64)
        pair_part = np.ascontiguousarray(pair_part, dtype=np.int64)
        n = seen_degree.shape[0]
        needed = max(n, int(pair_vertex.max()) + 1 if pair_vertex.shape[0] else 0)
        if needed:
            self._grow(needed)
        if n:
            self._seen_degree[:n] = seen_degree
        parts_of = self._parts_of
        for v, i in zip(pair_vertex.tolist(), pair_part.tolist()):
            parts_of[v].append(i)
        self._ecount[:] = np.asarray(edge_counts, dtype=np.float64)
        self._vcount[:] = np.bincount(pair_part, minlength=self.num_parts)
        self.edges_assigned = int(num_edges)
        self.vertices_covered = int(pair_vertex.shape[0])
        self.vertices_seen = int(np.unique(pair_vertex).shape[0])

    def assign(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Assign one window of edges; returns part ids in input order.

        Each call is one sorting window: degree estimates are updated
        with the whole window first, then edges are assigned ascending
        by estimated end-vertex degree sum.
        """
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        out = np.empty(src.shape[0], dtype=np.int64)
        if src.shape[0] == 0:
            return out
        self._grow(int(max(src.max(), dst.max())) + 1)
        seen_degree = self._seen_degree
        np.add.at(seen_degree, src, 1)
        np.add.at(seen_degree, dst, 1)
        key = seen_degree[src] + seen_degree[dst]
        order = np.argsort(key, kind="stable")

        num_parts = self.num_parts
        parts_of = self._parts_of
        ecount = self._ecount
        vcount = self._vcount
        eva = self._eva
        for pos in order.tolist():
            u, v = int(src[pos]), int(dst[pos])
            pu, pv = parts_of[u], parts_of[v]
            # Online normalization: the offline evaluation function
            # divides the per-part counts by |E|/p and |V|/p; here the
            # running totals stand in for the unknown |E| and |V| and
            # the balance terms are recomputed from the *current*
            # counts every step, so early units never persist as the
            # stream grows.  The divisors floor at one edge/vertex per
            # part (1/p): on the very first chunk, while p > |E seen|
            # (and before any vertex is covered), the raw running
            # average is zero and the unguarded quotient would divide
            # by zero.
            edge_unit = self.alpha / max(
                self.edges_assigned / num_parts, 1.0 / num_parts
            )
            vertex_unit = self.beta / max(
                self.vertices_covered / num_parts, 1.0 / num_parts
            )
            np.copyto(eva, ecount)
            eva *= edge_unit
            eva += vcount * vertex_unit
            eva += 2.0
            if pu:
                eva[pu] -= 1.0
            if pv:
                eva[pv] -= 1.0
            i = int(np.argmin(eva))
            out[pos] = i
            self.edges_assigned += 1
            ecount[i] += 1.0
            if i not in pu:
                if not pu:
                    self.vertices_seen += 1
                pu.append(i)
                self.vertices_covered += 1
                vcount[i] += 1.0
            if u != v and i not in pv:
                if not pv:
                    self.vertices_seen += 1
                pv.append(i)
                self.vertices_covered += 1
                vcount[i] += 1.0
        return out

    def replication_factor(self, num_vertices: Optional[int] = None) -> float:
        """Replicas per vertex so far (1.0 before any edge).

        Mid-stream the true |V| is unknown, so the default denominator
        is the distinct vertices seen; pass ``num_vertices`` (e.g. from
        the degree sketch, once the stream is exhausted) to match the
        ``Σ|V_i| / |V|`` convention of
        :func:`repro.partition.replication_factor`, which also counts
        isolated vertices.
        """
        denom = self.vertices_seen if num_vertices is None else int(num_vertices)
        if denom <= 0:
            return 1.0
        return self.vertices_covered / denom


class ShardedEBVAssigner:
    """Chunk-consuming core of :class:`ShardedEBVPartitioner`.

    One :meth:`assign` call processes one *epoch span* of
    ``num_shards * sync_interval`` consecutive edges: the span is dealt
    round-robin to the shard workers (edge ``j`` of the span goes to
    worker ``j % num_shards``), every worker assigns its sub-queue
    against a private snapshot of the committed global state, and the
    epoch ends with the synchronization barrier that merges all deltas.
    Feeding the spans sequentially reproduces the offline simulation
    byte-for-byte.

    The evaluation function normalizes by the exact ``|E|``/``|V|`` of
    the whole stream, so both must be known up front — out of core that
    is what the :class:`repro.stream.DegreeSketch` pre-pass provides.
    """

    def __init__(
        self,
        num_parts: int,
        num_shards: int,
        sync_interval: int,
        alpha: float,
        beta: float,
        num_edges: int,
        num_vertices: int,
    ):
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        self.num_parts = int(num_parts)
        self.num_shards = int(num_shards)
        self.window = self.num_shards * int(sync_interval)
        self.num_vertices = int(num_vertices)
        self._committed_masks = [0] * self.num_vertices
        self._committed_ecount = np.zeros(self.num_parts, dtype=np.int64)
        self._committed_vcount = np.zeros(self.num_parts, dtype=np.int64)
        self._edge_unit = float(alpha) / max(num_edges / self.num_parts, 1e-12)
        self._vertex_unit = float(beta) / max(num_vertices / self.num_parts, 1e-12)
        self._eva = np.empty(self.num_parts, dtype=np.float64)

    def assign(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Run one epoch over a span of ``window`` edges (last may be short)."""
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        span = src.shape[0]
        out = np.empty(span, dtype=np.int64)
        if span == 0:
            return out
        num_parts = self.num_parts
        committed_masks = self._committed_masks
        eva = self._eva
        epoch_masks: List[Dict[int, int]] = []
        epoch_ecount = np.zeros(num_parts, dtype=np.int64)
        for s in range(self.num_shards):
            local_masks: Dict[int, int] = {}
            local_ecount = self._committed_ecount.astype(np.float64).copy()
            local_vcount = self._committed_vcount.astype(np.float64).copy()
            for pos in range(s, span, self.num_shards):
                u, v = int(src[pos]), int(dst[pos])
                mask_u = local_masks.get(u, committed_masks[u])
                mask_v = local_masks.get(v, committed_masks[v])
                np.copyto(eva, local_ecount)
                eva *= self._edge_unit
                eva += local_vcount * self._vertex_unit
                eva += 2.0
                for i in range(num_parts):
                    bit = 1 << i
                    if mask_u & bit:
                        eva[i] -= 1.0
                    if mask_v & bit:
                        eva[i] -= 1.0
                i = int(np.argmin(eva))
                out[pos] = i
                local_ecount[i] += 1
                bit = 1 << i
                if not mask_u & bit:
                    local_masks[u] = mask_u | bit
                    local_vcount[i] += 1
                if u != v:
                    mask_v = local_masks.get(v, committed_masks[v])
                    if not mask_v & bit:
                        local_masks[v] = mask_v | bit
                        local_vcount[i] += 1
            epoch_masks.append(local_masks)
            epoch_ecount += (local_ecount - self._committed_ecount).astype(np.int64)
        # Synchronization barrier: merge every worker's deltas.
        for local_masks in epoch_masks:
            for vertex, mask in local_masks.items():
                committed_masks[vertex] |= mask
        self._committed_ecount += epoch_ecount
        # vcount must be recounted from the merged masks: two workers
        # may both have replicated the same vertex into a part.
        vcount = np.zeros(num_parts, dtype=np.int64)
        for mask in committed_masks:
            while mask:
                vcount[(mask & -mask).bit_length() - 1] += 1
                mask &= mask - 1
        self._committed_vcount = vcount
        return out

    def replication_factor(self, num_vertices: Optional[int] = None) -> float:
        """Committed replicas per vertex (see :class:`StreamingEBVAssigner`).

        The sharded core knows the exact |V| up front, so the metrics
        convention (``Σ|V_i| / |V|``) is the default denominator.
        """
        denom = self.num_vertices if num_vertices is None else int(num_vertices)
        if denom <= 0:
            return 1.0
        return int(self._committed_vcount.sum()) / denom


class StreamingEBVPartitioner(Partitioner):
    """One-pass EBV over an edge stream with online degree estimation.

    Parameters
    ----------
    chunk_size:
        Number of edges buffered (the sorting window).  ``1`` degenerates
        to fully-online EBV-unsort; larger windows recover more of the
        offline sorting benefit.
    alpha, beta:
        The evaluation-function balance weights (Eq. 2).
    """

    name = "EBV-stream"
    #: the out-of-core driver may feed this partitioner chunk-by-chunk
    supports_stream = True
    #: no |E|/|V| pre-pass needed — normalization uses running counts
    requires_totals = False

    @classmethod
    def stream_capable(cls, **kwargs) -> bool:
        """Whether a construction with ``kwargs`` could consume a stream.

        Used for eager :class:`~repro.pipeline.PipelineSpec` validation;
        every configuration of this partitioner streams.
        """
        return True

    def __init__(self, chunk_size: int = 4096, alpha: float = 1.0, beta: float = 1.0):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.chunk_size = int(chunk_size)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def streamer(
        self,
        num_parts: int,
        num_edges: Optional[int] = None,
        num_vertices: Optional[int] = None,
    ) -> StreamingEBVAssigner:
        """Fresh chunk-consuming assigner (the totals hints are unused)."""
        return StreamingEBVAssigner(num_parts, self.chunk_size, self.alpha, self.beta)

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Stream the edge list in input order, chunk by chunk."""
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        edge_parts = np.full(m, -1, dtype=np.int64)
        if num_parts == 1:
            edge_parts[:] = 0
            return PartitionResult(
                graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
                method=self.name,
            )
        assigner = self.streamer(num_parts)
        src, dst = graph.src, graph.dst
        for start in range(0, m, self.chunk_size):
            stop = min(start + self.chunk_size, m)
            edge_parts[start:stop] = assigner.assign(src[start:stop], dst[start:stop])
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
            method=self.name,
        )


class ShardedEBVPartitioner(Partitioner):
    """Distributed EBV simulation: sharded workers with periodic sync.

    Parameters
    ----------
    num_shards:
        Number of parallel partitioner workers.
    sync_interval:
        Edges each worker assigns between global state merges.  Smaller
        intervals track the sequential algorithm more closely (and cost
        more coordination in a real deployment).
    alpha, beta:
        Evaluation-function weights.
    sort_edges:
        Apply the (global) sorting preprocessing before sharding; edges
        are then dealt round-robin so every shard sees the same degree
        profile.  Sorting needs the whole edge list, so only the
        ``sort_edges=False`` configuration can consume a stream.
    """

    name = "EBV-sharded"
    supports_stream = True
    #: the evaluation function divides by exact |E| and |V|, so the
    #: out-of-core driver must run a degree-sketch pre-pass first
    requires_totals = True

    @classmethod
    def stream_capable(cls, **kwargs) -> bool:
        """Only the unsorted configuration can stream (see ``sort_edges``)."""
        return kwargs.get("sort_edges", True) is False

    def __init__(
        self,
        num_shards: int = 4,
        sync_interval: int = 256,
        alpha: float = 1.0,
        beta: float = 1.0,
        sort_edges: bool = True,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if sync_interval < 1:
            raise ValueError("sync_interval must be >= 1")
        self.num_shards = int(num_shards)
        self.sync_interval = int(sync_interval)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.sort_edges = bool(sort_edges)

    def streamer(
        self,
        num_parts: int,
        num_edges: Optional[int] = None,
        num_vertices: Optional[int] = None,
    ) -> ShardedEBVAssigner:
        """Chunk-consuming assigner; needs the stream's exact totals."""
        if self.sort_edges:
            raise ValueError(
                "EBV-sharded with sort_edges=true needs the whole edge list "
                "for the global degree sort and cannot consume a stream; "
                "use sort_edges=false"
            )
        if num_edges is None or num_vertices is None:
            raise ValueError(
                "EBV-sharded normalizes by exact |E| and |V|; run a "
                "degree-sketch pass and pass num_edges/num_vertices"
            )
        return ShardedEBVAssigner(
            num_parts, self.num_shards, self.sync_interval,
            self.alpha, self.beta, num_edges, num_vertices,
        )

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Run the sharded simulation; one epoch = sync_interval edges/shard."""
        from .ebv import edge_processing_order

        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        edge_parts = np.full(m, -1, dtype=np.int64)
        order = edge_processing_order(
            graph, "ascending" if self.sort_edges else "input"
        )
        assigner = ShardedEBVAssigner(
            num_parts, self.num_shards, self.sync_interval,
            self.alpha, self.beta, m, graph.num_vertices,
        )
        # Feed the processing order span by span; each span is exactly
        # one epoch of the sharded simulation (see ShardedEBVAssigner).
        src, dst = graph.src, graph.dst
        for start in range(0, m, assigner.window):
            span = order[start : start + assigner.window]
            edge_parts[span] = assigner.assign(src[span], dst[span])
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
            method=self.name,
        )
