"""Streaming and distributed EBV — the paper's stated future work.

Section VII: "EBV is a sequential and offline partition algorithm.  We
might need to extend it to the distributed and streaming environment to
handle larger graphs."  This module provides both extensions:

* :class:`StreamingEBVPartitioner` — a one-pass variant that never sees
  the whole edge list.  Edges arrive in chunks; degrees are *estimated
  online* from the prefix seen so far, each chunk is sorted by the
  estimated degree sum (a windowed approximation of the offline sorting
  preprocessing, in the spirit of ADWISE's bounded look-ahead), and the
  EBV evaluation function assigns the chunk.  Exact |E| and |V| are not
  known mid-stream, so the balance terms normalize by the *running*
  counts instead — the same greedy score, computable online.

* :class:`ShardedEBVPartitioner` — a simulated distributed EBV: ``k``
  partitioner workers each own a shard of the edge stream and run EBV
  against a private snapshot of the global state (``keep``/``ecount``/
  ``vcount``), merging snapshots every ``sync_interval`` edges.  Larger
  intervals mean staler state and a higher replication factor; the
  ablation bench quantifies that staleness cost.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult

__all__ = ["StreamingEBVPartitioner", "ShardedEBVPartitioner"]


class StreamingEBVPartitioner(Partitioner):
    """One-pass EBV over an edge stream with online degree estimation.

    Parameters
    ----------
    chunk_size:
        Number of edges buffered (the sorting window).  ``1`` degenerates
        to fully-online EBV-unsort; larger windows recover more of the
        offline sorting benefit.
    alpha, beta:
        The evaluation-function balance weights (Eq. 2).
    """

    name = "EBV-stream"

    def __init__(self, chunk_size: int = 4096, alpha: float = 1.0, beta: float = 1.0):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if alpha <= 0 or beta <= 0:
            raise ValueError("alpha and beta must be positive")
        self.chunk_size = int(chunk_size)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Stream the edge list in input order, chunk by chunk."""
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        n = graph.num_vertices
        edge_parts = np.full(m, -1, dtype=np.int64)
        if num_parts == 1:
            edge_parts[:] = 0
            return PartitionResult(
                graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
                method=self.name,
            )

        seen_degree = np.zeros(n, dtype=np.int64)  # degrees observed so far
        balance = np.zeros(num_parts, dtype=np.float64)
        parts_of: List[List[int]] = [[] for _ in range(n)]
        eva = np.empty(num_parts, dtype=np.float64)
        edges_assigned = 0
        vertices_covered = 0
        src, dst = graph.src, graph.dst

        for start in range(0, m, self.chunk_size):
            chunk = np.arange(start, min(start + self.chunk_size, m))
            # Update degree estimates with this chunk, then sort the
            # chunk ascending by estimated end-vertex degree sum.
            np.add.at(seen_degree, src[chunk], 1)
            np.add.at(seen_degree, dst[chunk], 1)
            key = seen_degree[src[chunk]] + seen_degree[dst[chunk]]
            chunk = chunk[np.argsort(key, kind="stable")]

            for e in chunk.tolist():
                u, v = int(src[e]), int(dst[e])
                pu, pv = parts_of[u], parts_of[v]
                np.copyto(eva, balance)
                eva += 2.0
                if pu:
                    eva[pu] -= 1.0
                if pv:
                    eva[pv] -= 1.0
                i = int(np.argmin(eva))
                edge_parts[e] = i
                edges_assigned += 1
                # Online normalization: running totals instead of |E|, |V|.
                edge_unit = self.alpha / max(edges_assigned / num_parts, 1.0)
                vertex_unit = self.beta / max(vertices_covered / num_parts, 1.0)
                balance[i] += edge_unit
                if i not in pu:
                    pu.append(i)
                    vertices_covered += 1
                    balance[i] += vertex_unit
                if u != v and i not in pv:
                    pv.append(i)
                    vertices_covered += 1
                    balance[i] += vertex_unit
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
            method=self.name,
        )


class ShardedEBVPartitioner(Partitioner):
    """Distributed EBV simulation: sharded workers with periodic sync.

    Parameters
    ----------
    num_shards:
        Number of parallel partitioner workers.
    sync_interval:
        Edges each worker assigns between global state merges.  Smaller
        intervals track the sequential algorithm more closely (and cost
        more coordination in a real deployment).
    alpha, beta:
        Evaluation-function weights.
    sort_edges:
        Apply the (global) sorting preprocessing before sharding; edges
        are then dealt round-robin so every shard sees the same degree
        profile.
    """

    name = "EBV-sharded"

    def __init__(
        self,
        num_shards: int = 4,
        sync_interval: int = 256,
        alpha: float = 1.0,
        beta: float = 1.0,
        sort_edges: bool = True,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if sync_interval < 1:
            raise ValueError("sync_interval must be >= 1")
        self.num_shards = int(num_shards)
        self.sync_interval = int(sync_interval)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.sort_edges = bool(sort_edges)

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Run the sharded simulation; one epoch = sync_interval edges/shard."""
        from .ebv import edge_processing_order

        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        m = graph.num_edges
        n = graph.num_vertices
        edge_parts = np.full(m, -1, dtype=np.int64)
        order = edge_processing_order(
            graph, "ascending" if self.sort_edges else "input"
        )
        # Deal edges round-robin to shards (preserving the sorted order
        # within each shard's queue).
        shards = [order[s :: self.num_shards] for s in range(self.num_shards)]
        positions = [0] * self.num_shards

        # Committed global state (what every worker saw at the last sync).
        committed_masks = [0] * n  # bitmask of parts holding each vertex
        committed_ecount = np.zeros(num_parts, dtype=np.int64)
        committed_vcount = np.zeros(num_parts, dtype=np.int64)
        edge_unit = self.alpha / max(m / num_parts, 1e-12)
        vertex_unit = self.beta / max(n / num_parts, 1e-12)
        src, dst = graph.src, graph.dst
        eva = np.empty(num_parts, dtype=np.float64)

        while any(positions[s] < shards[s].shape[0] for s in range(self.num_shards)):
            epoch_masks: List[dict] = []
            epoch_ecount = np.zeros(num_parts, dtype=np.int64)
            for s in range(self.num_shards):
                local_masks: dict = {}
                local_ecount = committed_ecount.astype(np.float64).copy()
                local_vcount = committed_vcount.astype(np.float64).copy()
                queue = shards[s]
                stop = min(positions[s] + self.sync_interval, queue.shape[0])
                for e in queue[positions[s] : stop].tolist():
                    u, v = int(src[e]), int(dst[e])
                    mask_u = local_masks.get(u, committed_masks[u])
                    mask_v = local_masks.get(v, committed_masks[v])
                    np.copyto(eva, local_ecount)
                    eva *= edge_unit
                    eva += local_vcount * vertex_unit
                    eva += 2.0
                    for i in range(num_parts):
                        bit = 1 << i
                        if mask_u & bit:
                            eva[i] -= 1.0
                        if mask_v & bit:
                            eva[i] -= 1.0
                    i = int(np.argmin(eva))
                    edge_parts[e] = i
                    local_ecount[i] += 1
                    bit = 1 << i
                    if not mask_u & bit:
                        local_masks[u] = mask_u | bit
                        local_vcount[i] += 1
                    if u != v:
                        mask_v = local_masks.get(v, committed_masks[v])
                        if not mask_v & bit:
                            local_masks[v] = mask_v | bit
                            local_vcount[i] += 1
                positions[s] = stop
                epoch_masks.append(local_masks)
                epoch_ecount += (local_ecount - committed_ecount).astype(np.int64)
            # Synchronization barrier: merge every worker's deltas.
            for local_masks in epoch_masks:
                for vertex, mask in local_masks.items():
                    committed_masks[vertex] |= mask
            committed_ecount += epoch_ecount
            # vcount must be recounted from the merged masks: two workers
            # may both have replicated the same vertex into a part.
            committed_vcount = np.zeros(num_parts, dtype=np.int64)
            for mask in committed_masks:
                while mask:
                    committed_vcount[(mask & -mask).bit_length() - 1] += 1
                    mask &= mask - 1
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT,
            method=self.name,
        )
