"""Cartesian (2D) Vertex-Cut, after Boman et al., SC 2013.

CVC arranges the ``p`` workers in an ``r × c`` grid (``p = r·c``) and
tiles the adjacency matrix: edge ``(u, v)`` goes to the worker at grid
position ``(row(u), col(v))`` where ``row``/``col`` are hash functions.
Each vertex is then replicated in at most ``r + c - 1`` workers (its
matrix row plus its matrix column), which caps the replication factor
independent of the degree distribution — the property that makes 2D
partitioning attractive for scale-free matrices.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult
from .hashing import mix64

__all__ = ["CVCPartitioner", "grid_shape"]


def grid_shape(num_parts: int) -> Tuple[int, int]:
    """Factor ``num_parts`` into the most-square ``(rows, cols)`` grid."""
    best = (1, num_parts)
    for r in range(1, int(math.isqrt(num_parts)) + 1):
        if num_parts % r == 0:
            best = (r, num_parts // r)
    return best


class CVCPartitioner(Partitioner):
    """2D cartesian vertex-cut edge partitioner.

    Parameters
    ----------
    seed:
        Hash seed for the row/column vertex hashes.
    """

    name = "CVC"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Tile the adjacency matrix over a near-square worker grid."""
        rows, cols = grid_shape(num_parts)
        r = (mix64(graph.src, self.seed) % np.uint64(rows)).astype(np.int64)
        c = (mix64(graph.dst, self.seed + 1) % np.uint64(cols)).astype(np.int64)
        parts = r * cols + c
        return PartitionResult(
            graph, num_parts, edge_parts=parts, kind=VERTEX_CUT, method=self.name
        )
