"""Random hash partitioners: the trivial baselines of both cut families.

``RandomEdgeHashPartitioner`` hashes each edge (as a pair) to a part —
the vertex-cut analogue of Giraph's default placement.  It is perfectly
edge balanced but replicates aggressively.  ``RandomVertexHashPartitioner``
hashes each vertex — the classic edge-cut default.  Neither appears in
the paper's headline tables, but both are useful reference points for
tests and ablations (every serious algorithm should beat them on
replication factor).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import EDGE_CUT, VERTEX_CUT, Partitioner, PartitionResult
from .hashing import mix64

__all__ = ["RandomEdgeHashPartitioner", "RandomVertexHashPartitioner"]


class RandomEdgeHashPartitioner(Partitioner):
    """1D vertex-cut: hash each edge independently of any structure."""

    name = "RandomEdge"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Hash the (src, dst) pair of every edge to a part."""
        key = mix64(graph.src, self.seed) ^ mix64(graph.dst, self.seed + 17)
        parts = (key % np.uint64(num_parts)).astype(np.int64)
        return PartitionResult(
            graph, num_parts, edge_parts=parts, kind=VERTEX_CUT, method=self.name
        )


class RandomVertexHashPartitioner(Partitioner):
    """1D edge-cut: hash each vertex to a part."""

    name = "RandomVertex"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Hash every vertex id to a part."""
        ids = np.arange(graph.num_vertices, dtype=np.int64)
        parts = (mix64(ids, self.seed) % np.uint64(num_parts)).astype(np.int64)
        return PartitionResult(
            graph, num_parts, vertex_parts=parts, kind=EDGE_CUT, method=self.name
        )
