"""Partitioner interface and the shared :class:`PartitionResult` container.

The paper (Section III-B/C) distinguishes two partitioning families:

* **vertex-cut (edge partitioning)** — the edge set is split into ``p``
  disjoint subsets; ``V_i`` is the vertex set covered by ``E_i`` and a
  vertex may be replicated across subgraphs.  EBV, Ginger, DBH, CVC and
  NE are vertex-cut.
* **edge-cut (vertex partitioning)** — the vertex set is split; ``E_i``
  contains every edge incident to ``V_i`` and cross-partition edges are
  replicated.  METIS is edge-cut.

:class:`PartitionResult` normalizes both so metrics, the BSP engine and
the analysis code can treat any partitioner uniformly.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from ..graph import Graph

__all__ = ["VERTEX_CUT", "EDGE_CUT", "PartitionResult", "Partitioner"]

VERTEX_CUT = "vertex-cut"
EDGE_CUT = "edge-cut"


class PartitionResult:
    """A finished partition of a graph into ``p`` subgraphs.

    Parameters
    ----------
    graph:
        The partitioned graph.
    num_parts:
        ``p``, the number of subgraphs.
    edge_parts:
        For vertex-cut results: array of length ``graph.num_edges`` giving
        each edge's subgraph in ``[0, p)``.  For edge-cut results this is
        derived (each edge is *owned* by its source vertex's part, while
        replicas extend to the destination's part).
    vertex_parts:
        For edge-cut results: array of length ``graph.num_vertices`` giving
        each vertex's (unique) subgraph.  ``None`` for vertex-cut.
    kind:
        ``VERTEX_CUT`` or ``EDGE_CUT``.
    method:
        Name of the producing algorithm, used in reports.
    """

    def __init__(
        self,
        graph: Graph,
        num_parts: int,
        edge_parts: Optional[np.ndarray] = None,
        vertex_parts: Optional[np.ndarray] = None,
        kind: str = VERTEX_CUT,
        method: str = "unknown",
    ):
        if kind not in (VERTEX_CUT, EDGE_CUT):
            raise ValueError(f"unknown partition kind {kind!r}")
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        self.graph = graph
        self.num_parts = int(num_parts)
        self.kind = kind
        self.method = method

        if kind == VERTEX_CUT:
            if edge_parts is None:
                raise ValueError("vertex-cut result requires edge_parts")
            self.edge_parts = np.ascontiguousarray(edge_parts, dtype=np.int64)
            if self.edge_parts.shape[0] != graph.num_edges:
                raise ValueError("edge_parts must cover every edge")
            self.vertex_parts = None
        else:
            if vertex_parts is None:
                raise ValueError("edge-cut result requires vertex_parts")
            self.vertex_parts = np.ascontiguousarray(vertex_parts, dtype=np.int64)
            if self.vertex_parts.shape[0] != graph.num_vertices:
                raise ValueError("vertex_parts must cover every vertex")
            # Each edge is executed in its source's partition; the
            # destination's partition holds a replica if it differs.
            self.edge_parts = self.vertex_parts[graph.src]
        if self.edge_parts.size and (
            self.edge_parts.min() < 0 or self.edge_parts.max() >= num_parts
        ):
            raise ValueError("part ids out of range")
        self._vertex_membership: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def edge_counts(self) -> np.ndarray:
        """``|E_i|`` for every subgraph.

        For edge-cut partitions this counts *replicated* edges: every edge
        incident to ``V_i`` belongs to ``E_i`` (Section III-C), so a
        cross-partition edge is counted in both endpoint partitions.
        """
        if self.kind == VERTEX_CUT:
            return np.bincount(self.edge_parts, minlength=self.num_parts)
        src_p = self.vertex_parts[self.graph.src]
        dst_p = self.vertex_parts[self.graph.dst]
        counts = np.bincount(src_p, minlength=self.num_parts)
        cross = src_p != dst_p
        counts += np.bincount(dst_p[cross], minlength=self.num_parts)
        return counts

    def vertex_membership(self) -> List[np.ndarray]:
        """For each subgraph ``i``, the sorted array of vertices in ``V_i``."""
        if self._vertex_membership is None:
            members: List[np.ndarray] = []
            if self.kind == VERTEX_CUT:
                for i in range(self.num_parts):
                    mask = self.edge_parts == i
                    verts = np.unique(
                        np.concatenate([self.graph.src[mask], self.graph.dst[mask]])
                    )
                    members.append(verts)
            else:
                # V_i is the owned vertex set plus ghosts (other endpoints
                # of replicated edges).  For metrics purposes the paper
                # treats edge-cut V_i as the *owned* set (Σ|V_i| = |V|).
                for i in range(self.num_parts):
                    members.append(np.nonzero(self.vertex_parts == i)[0])
            self._vertex_membership = members
        return self._vertex_membership

    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` for every subgraph (see :meth:`vertex_membership`)."""
        return np.array([m.size for m in self.vertex_membership()], dtype=np.int64)

    def replica_map(self) -> List[np.ndarray]:
        """For each vertex, the sorted array of subgraphs holding a copy.

        For vertex-cut results these are the replica locations; for
        edge-cut results these are the owner plus every partition that
        holds the vertex as a ghost endpoint of a replicated edge.
        """
        pairs = set()
        if self.kind == VERTEX_CUT:
            for arr, parts in ((self.graph.src, self.edge_parts), (self.graph.dst, self.edge_parts)):
                uniq = np.unique(arr * np.int64(self.num_parts) + parts)
                for key in uniq.tolist():
                    pairs.add((key // self.num_parts, key % self.num_parts))
        else:
            for v, p in enumerate(self.vertex_parts.tolist()):
                pairs.add((v, p))
            src_p = self.vertex_parts[self.graph.src]
            dst_p = self.vertex_parts[self.graph.dst]
            cross = src_p != dst_p
            for v, p in zip(self.graph.dst[cross].tolist(), src_p[cross].tolist()):
                pairs.add((v, p))
            for v, p in zip(self.graph.src[cross].tolist(), dst_p[cross].tolist()):
                pairs.add((v, p))
        out: List[List[int]] = [[] for _ in range(self.graph.num_vertices)]
        for v, p in sorted(pairs):
            out[v].append(p)
        return [np.asarray(ps, dtype=np.int64) for ps in out]

    def subgraph_edges(self, part: int) -> np.ndarray:
        """Edge ids assigned to (executed by) subgraph ``part``."""
        return np.nonzero(self.edge_parts == part)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionResult(method={self.method!r}, kind={self.kind!r}, "
            f"p={self.num_parts}, graph={self.graph.name!r})"
        )


class Partitioner(abc.ABC):
    """Base class for all partition algorithms.

    Subclasses implement :meth:`partition`, taking a graph and the number
    of target subgraphs and returning a :class:`PartitionResult`.
    """

    #: human-readable algorithm name (class attribute overridden by each
    #: implementation; used as the default ``method`` on results).
    name: str = "base"

    @abc.abstractmethod
    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Partition ``graph`` into ``num_parts`` subgraphs."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
