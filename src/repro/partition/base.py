"""Partitioner interface and the shared :class:`PartitionResult` container.

The paper (Section III-B/C) distinguishes two partitioning families:

* **vertex-cut (edge partitioning)** — the edge set is split into ``p``
  disjoint subsets; ``V_i`` is the vertex set covered by ``E_i`` and a
  vertex may be replicated across subgraphs.  EBV, Ginger, DBH, CVC and
  NE are vertex-cut.
* **edge-cut (vertex partitioning)** — the vertex set is split; ``E_i``
  contains every edge incident to ``V_i`` and cross-partition edges are
  replicated.  METIS is edge-cut.

:class:`PartitionResult` normalizes both so metrics, the BSP engine and
the analysis code can treat any partitioner uniformly.
"""

from __future__ import annotations

import abc
from typing import List, Optional

import numpy as np

from ..graph import Graph

__all__ = ["VERTEX_CUT", "EDGE_CUT", "PartitionResult", "Partitioner"]

VERTEX_CUT = "vertex-cut"
EDGE_CUT = "edge-cut"

#: Max ``num_vertices * num_parts`` cells for the dense (bitmap /
#: bincount) reductions in the membership and distributed-build paths;
#: larger layouts use sorted-key reductions to bound memory.
_DENSE_CELLS = 1 << 25


def _group_vertices_by_part(key_arrays, n: int, p: int) -> List[np.ndarray]:
    """Group flat ``part * n + vertex`` keys into per-part sorted vertex arrays.

    Below :data:`_DENSE_CELLS` this scatters into a dense ``(p, n)``
    bitmap and reads each row back with ``flatnonzero``; above it, a
    sorted-key reduction splits one ``np.unique`` pass at the part
    boundaries.  Both return identical arrays.
    """
    if n * p <= _DENSE_CELLS:
        mark = np.zeros(p * n, dtype=bool)
        for keys in key_arrays:
            mark[keys] = True
        rows = mark.reshape(p, n)
        return [np.flatnonzero(rows[i]) for i in range(p)]
    keys = np.unique(np.concatenate(list(key_arrays)))
    bounds = np.searchsorted(keys // n, np.arange(p + 1))
    verts = keys % n
    return [verts[bounds[i] : bounds[i + 1]] for i in range(p)]


class PartitionResult:
    """A finished partition of a graph into ``p`` subgraphs.

    Parameters
    ----------
    graph:
        The partitioned graph.
    num_parts:
        ``p``, the number of subgraphs.
    edge_parts:
        For vertex-cut results: array of length ``graph.num_edges`` giving
        each edge's subgraph in ``[0, p)``.  For edge-cut results this is
        derived (each edge is *owned* by its source vertex's part, while
        replicas extend to the destination's part).
    vertex_parts:
        For edge-cut results: array of length ``graph.num_vertices`` giving
        each vertex's (unique) subgraph.  ``None`` for vertex-cut.
    kind:
        ``VERTEX_CUT`` or ``EDGE_CUT``.
    method:
        Name of the producing algorithm, used in reports.
    """

    def __init__(
        self,
        graph: Graph,
        num_parts: int,
        edge_parts: Optional[np.ndarray] = None,
        vertex_parts: Optional[np.ndarray] = None,
        kind: str = VERTEX_CUT,
        method: str = "unknown",
    ):
        if kind not in (VERTEX_CUT, EDGE_CUT):
            raise ValueError(f"unknown partition kind {kind!r}")
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        self.graph = graph
        self.num_parts = int(num_parts)
        self.kind = kind
        self.method = method

        if kind == VERTEX_CUT:
            if edge_parts is None:
                raise ValueError("vertex-cut result requires edge_parts")
            self.edge_parts = np.ascontiguousarray(edge_parts, dtype=np.int64)
            if self.edge_parts.shape[0] != graph.num_edges:
                raise ValueError("edge_parts must cover every edge")
            self.vertex_parts = None
        else:
            if vertex_parts is None:
                raise ValueError("edge-cut result requires vertex_parts")
            self.vertex_parts = np.ascontiguousarray(vertex_parts, dtype=np.int64)
            if self.vertex_parts.shape[0] != graph.num_vertices:
                raise ValueError("vertex_parts must cover every vertex")
            # Each edge is executed in its source's partition; the
            # destination's partition holds a replica if it differs.
            self.edge_parts = self.vertex_parts[graph.src]
        if self.edge_parts.size and (
            self.edge_parts.min() < 0 or self.edge_parts.max() >= num_parts
        ):
            raise ValueError("part ids out of range")
        self._vertex_membership: Optional[List[np.ndarray]] = None

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def edge_counts(self) -> np.ndarray:
        """``|E_i|`` for every subgraph.

        For edge-cut partitions this counts *replicated* edges: every edge
        incident to ``V_i`` belongs to ``E_i`` (Section III-C), so a
        cross-partition edge is counted in both endpoint partitions.
        """
        if self.kind == VERTEX_CUT:
            return np.bincount(self.edge_parts, minlength=self.num_parts)
        src_p = self.vertex_parts[self.graph.src]
        dst_p = self.vertex_parts[self.graph.dst]
        counts = np.bincount(src_p, minlength=self.num_parts)
        cross = src_p != dst_p
        counts += np.bincount(dst_p[cross], minlength=self.num_parts)
        return counts

    def vertex_membership(self) -> List[np.ndarray]:
        """For each subgraph ``i``, the sorted array of vertices in ``V_i``."""
        if self._vertex_membership is None:
            n = self.graph.num_vertices
            p = self.num_parts
            if self.kind == VERTEX_CUT:
                members = _group_vertices_by_part(
                    [
                        self.edge_parts * np.int64(n) + self.graph.src,
                        self.edge_parts * np.int64(n) + self.graph.dst,
                    ],
                    n,
                    p,
                )
            else:
                # V_i is the owned vertex set plus ghosts (other endpoints
                # of replicated edges).  For metrics purposes the paper
                # treats edge-cut V_i as the *owned* set (Σ|V_i| = |V|).
                # The stable sort leaves each part's vertices ascending.
                order = np.argsort(self.vertex_parts, kind="stable")
                bounds = np.searchsorted(self.vertex_parts[order], np.arange(p + 1))
                members = [order[bounds[i] : bounds[i + 1]] for i in range(p)]
            self._vertex_membership = members
        return self._vertex_membership

    def vertex_counts(self) -> np.ndarray:
        """``|V_i|`` for every subgraph (see :meth:`vertex_membership`)."""
        return np.array([m.size for m in self.vertex_membership()], dtype=np.int64)

    def replica_map(self) -> List[np.ndarray]:
        """For each vertex, the sorted array of subgraphs holding a copy.

        For vertex-cut results these are the replica locations; for
        edge-cut results these are the owner plus every partition that
        holds the vertex as a ghost endpoint of a replicated edge.
        """
        n = self.graph.num_vertices
        p = self.num_parts
        if self.kind == VERTEX_CUT:
            keys = np.unique(
                np.concatenate(
                    [
                        self.graph.src * np.int64(p) + self.edge_parts,
                        self.graph.dst * np.int64(p) + self.edge_parts,
                    ]
                )
            )
        else:
            src_p = self.vertex_parts[self.graph.src]
            dst_p = self.vertex_parts[self.graph.dst]
            cross = src_p != dst_p
            keys = np.unique(
                np.concatenate(
                    [
                        np.arange(n, dtype=np.int64) * np.int64(p) + self.vertex_parts,
                        self.graph.dst[cross] * np.int64(p) + src_p[cross],
                        self.graph.src[cross] * np.int64(p) + dst_p[cross],
                    ]
                )
            )
        # keys are sorted by (vertex, part); split at vertex boundaries.
        bounds = np.searchsorted(keys // p, np.arange(n + 1))
        parts = np.ascontiguousarray(keys % p)
        return [parts[bounds[v] : bounds[v + 1]] for v in range(n)]

    def subgraph_edges(self, part: int) -> np.ndarray:
        """Edge ids assigned to (executed by) subgraph ``part``."""
        return np.nonzero(self.edge_parts == part)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartitionResult(method={self.method!r}, kind={self.kind!r}, "
            f"p={self.num_parts}, graph={self.graph.name!r})"
        )


class Partitioner(abc.ABC):
    """Base class for all partition algorithms.

    Subclasses implement :meth:`partition`, taking a graph and the number
    of target subgraphs and returning a :class:`PartitionResult`.
    """

    #: human-readable algorithm name (class attribute overridden by each
    #: implementation; used as the default ``method`` on results).
    name: str = "base"

    @abc.abstractmethod
    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Partition ``graph`` into ``num_parts`` subgraphs."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
