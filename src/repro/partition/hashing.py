"""Deterministic integer mixing used by the hash-based partitioners.

Python's builtin ``hash`` of an int is the identity, which makes
``hash(v) % p`` systematically biased for structured vertex ids (e.g. the
grid ids of the road graph).  All hash-based partitioners (DBH, CVC,
random hash) therefore share this splitmix64-style finalizer, which is
vectorizable with numpy and stable across runs/platforms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64"]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(x: np.ndarray, seed: int = 0) -> np.ndarray:
    """Apply the splitmix64 finalizer to an int array; returns uint64."""
    offset = np.uint64((0x9E3779B97F4A7C15 * (seed + 1)) & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        z = (np.asarray(x).astype(np.uint64) + offset) & _MASK
        z = (z ^ (z >> np.uint64(30))) * _C1 & _MASK
        z = (z ^ (z >> np.uint64(27))) * _C2 & _MASK
        return z ^ (z >> np.uint64(31))
