"""A METIS-style multilevel edge-cut partitioner, built from scratch.

METIS (Karypis & Kumar) is the canonical *local-based edge-cut*
partitioner: it balances **vertex** counts and minimizes the number of
cut edges, with no control over per-partition *edge* counts.  On
power-law graphs that omission is fatal — a balanced-vertex partition
can pack a hub's entire edge neighborhood into one part, which is the
edge-imbalance explosion the paper measures (Table III: edge imbalance
2.1–6.4 on the power-law graphs while vertex imbalance stays ~1.03).

This implementation follows the classic multilevel recipe:

1. **Coarsening** by heavy-edge matching (HEM): repeatedly contract a
   maximal matching that prefers heavy edges, carrying vertex and edge
   weights, until the graph is small or stops shrinking.
2. **Initial partitioning** by greedy graph growing on the coarsest
   graph: parts are grown one at a time from low-connectivity seeds
   until they reach the vertex-weight target.
3. **Uncoarsening with refinement**: project the partition back level
   by level, running a greedy Kernighan–Lin/FM-style boundary pass at
   each level that moves vertices to their best-gain part subject to a
   vertex-weight balance tolerance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..graph import Graph
from .base import EDGE_CUT, Partitioner, PartitionResult

__all__ = ["MetisLikePartitioner"]


class _WeightedGraph:
    """Undirected weighted CSR used internally by the multilevel driver."""

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        neighbors: np.ndarray,
        edge_weights: np.ndarray,
        vertex_weights: np.ndarray,
    ):
        self.num_vertices = num_vertices
        self.indptr = indptr
        self.neighbors = neighbors
        self.edge_weights = edge_weights
        self.vertex_weights = vertex_weights

    @classmethod
    def from_graph(cls, graph: Graph) -> "_WeightedGraph":
        """Symmetrize the input and collapse parallel edges into weights."""
        n = graph.num_vertices
        u = np.concatenate([graph.src, graph.dst])
        v = np.concatenate([graph.dst, graph.src])
        keep = u != v
        u, v = u[keep], v[keep]
        key = u * np.int64(n) + v
        uniq, counts = np.unique(key, return_counts=True)
        uu = (uniq // n).astype(np.int64)
        vv = (uniq % n).astype(np.int64)
        order = np.argsort(uu, kind="stable")
        uu, vv, counts = uu[order], vv[order], counts[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(uu, minlength=n), out=indptr[1:])
        return cls(
            n,
            indptr,
            vv,
            counts.astype(np.float64),
            np.ones(n, dtype=np.float64),
        )

    def neighbors_of(self, x: int) -> Tuple[np.ndarray, np.ndarray]:
        sl = slice(self.indptr[x], self.indptr[x + 1])
        return self.neighbors[sl], self.edge_weights[sl]


def _heavy_edge_matching(wg: _WeightedGraph, rng) -> np.ndarray:
    """Return ``match`` where ``match[v]`` is v's partner (or v itself)."""
    n = wg.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for x in order.tolist():
        if match[x] >= 0:
            continue
        nbrs, wts = wg.neighbors_of(x)
        best, best_w = -1, -1.0
        for y, w in zip(nbrs.tolist(), wts.tolist()):
            if match[y] < 0 and y != x and w > best_w:
                best, best_w = y, w
        if best >= 0:
            match[x] = best
            match[best] = x
        else:
            match[x] = x
    return match


def _contract(wg: _WeightedGraph, match: np.ndarray) -> Tuple["_WeightedGraph", np.ndarray]:
    """Contract matched pairs; returns the coarse graph and the fine→coarse map."""
    n = wg.num_vertices
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_id[v] >= 0:
            continue
        coarse_id[v] = next_id
        partner = int(match[v])
        if partner != v and coarse_id[partner] < 0:
            coarse_id[partner] = next_id
        next_id += 1
    cn = next_id
    cu = coarse_id[np.repeat(np.arange(n), np.diff(wg.indptr))]
    cv = coarse_id[wg.neighbors]
    keep = cu != cv
    cu, cv, w = cu[keep], cv[keep], wg.edge_weights[keep]
    key = cu * np.int64(cn) + cv
    uniq, inverse = np.unique(key, return_inverse=True)
    weights = np.bincount(inverse, weights=w)
    uu = (uniq // cn).astype(np.int64)
    vv = (uniq % cn).astype(np.int64)
    order = np.argsort(uu, kind="stable")
    uu, vv, weights = uu[order], vv[order], weights[order]
    indptr = np.zeros(cn + 1, dtype=np.int64)
    np.cumsum(np.bincount(uu, minlength=cn), out=indptr[1:])
    vwgt = np.bincount(coarse_id, weights=wg.vertex_weights, minlength=cn)
    return _WeightedGraph(cn, indptr, vv, weights, vwgt), coarse_id


def _greedy_grow_initial(wg: _WeightedGraph, num_parts: int, rng) -> np.ndarray:
    """Greedy graph growing: fill parts sequentially to the weight target."""
    n = wg.num_vertices
    parts = np.full(n, -1, dtype=np.int64)
    total = wg.vertex_weights.sum()
    target = total / num_parts
    order = np.lexsort((rng.random(n), wg.vertex_weights))
    ptr = 0
    for k in range(num_parts - 1):
        weight = 0.0
        frontier: List[int] = []
        while weight < target:
            x = -1
            while frontier:
                cand = frontier.pop()
                if parts[cand] < 0:
                    x = cand
                    break
            if x < 0:
                while ptr < n and parts[order[ptr]] >= 0:
                    ptr += 1
                if ptr >= n:
                    break
                x = int(order[ptr])
            parts[x] = k
            weight += wg.vertex_weights[x]
            nbrs, _ = wg.neighbors_of(x)
            for y in nbrs.tolist():
                if parts[y] < 0:
                    frontier.append(y)
        if ptr >= n and not frontier:
            break
    parts[parts < 0] = num_parts - 1
    return parts


def _rebalance(
    wg: _WeightedGraph,
    parts: np.ndarray,
    part_weight: np.ndarray,
    max_weight: float,
) -> None:
    """Move vertices out of overweight parts, least-attached first.

    Gain-only refinement never drains an overweight part (moves into it
    are blocked but nothing forces moves out), so METIS-style balancing
    needs this explicit step: evict the vertices with the weakest
    internal connectivity to the lightest parts until within tolerance.
    """
    num_parts = part_weight.shape[0]
    conn = np.zeros(num_parts, dtype=np.float64)
    for here in range(num_parts):
        if part_weight[here] <= max_weight:
            continue
        members = np.nonzero(parts == here)[0]
        # Cheapest-to-evict first: lowest internal edge weight.
        internal = np.zeros(members.shape[0])
        for i, x in enumerate(members.tolist()):
            nbrs, wts = wg.neighbors_of(x)
            internal[i] = wts[parts[nbrs] == here].sum() if nbrs.size else 0.0
        for i in np.argsort(internal).tolist():
            if part_weight[here] <= max_weight:
                break
            x = int(members[i])
            xw = wg.vertex_weights[x]
            nbrs, wts = wg.neighbors_of(x)
            conn.fill(0.0)
            if nbrs.size:
                np.add.at(conn, parts[nbrs], wts)
            conn[here] = -np.inf
            # Prefer the most-connected part that has room, else lightest.
            order = np.argsort(conn)[::-1]
            target = -1
            for cand in order.tolist():
                if part_weight[cand] + xw <= max_weight:
                    target = cand
                    break
            if target < 0:
                target = int(np.argmin(part_weight))
                if target == here:
                    continue
            parts[x] = target
            part_weight[here] -= xw
            part_weight[target] += xw


def _refine(
    wg: _WeightedGraph,
    parts: np.ndarray,
    num_parts: int,
    tolerance: float,
    passes: int = 4,
) -> np.ndarray:
    """Greedy FM-style boundary refinement under a vertex-weight tolerance."""
    part_weight = np.bincount(
        parts, weights=wg.vertex_weights, minlength=num_parts
    ).astype(np.float64)
    max_weight = tolerance * wg.vertex_weights.sum() / num_parts
    _rebalance(wg, parts, part_weight, max_weight)
    conn = np.zeros(num_parts, dtype=np.float64)
    for _ in range(passes):
        moved = 0
        for x in range(wg.num_vertices):
            nbrs, wts = wg.neighbors_of(x)
            if nbrs.size == 0:
                continue
            here = int(parts[x])
            conn.fill(0.0)
            np.add.at(conn, parts[nbrs], wts)
            internal = conn[here]
            conn[here] = -np.inf
            best = int(np.argmax(conn))
            gain = conn[best] - internal
            if gain <= 0:
                continue
            xw = wg.vertex_weights[x]
            if part_weight[best] + xw > max_weight:
                continue
            parts[x] = best
            part_weight[here] -= xw
            part_weight[best] += xw
            moved += 1
        if moved == 0:
            break
    return parts


class MetisLikePartitioner(Partitioner):
    """Multilevel edge-cut (vertex partitioning) in the style of METIS.

    Parameters
    ----------
    tolerance:
        Allowed vertex-weight imbalance (METIS's default is ~1.03).
    coarsen_to:
        Stop coarsening when the graph has at most
        ``max(coarsen_to, 20 · p)`` vertices.
    seed:
        Randomizes matching and seed orders.
    """

    name = "METIS"

    def __init__(self, tolerance: float = 1.03, coarsen_to: int = 128, seed: int = 0):
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        self.tolerance = float(tolerance)
        self.coarsen_to = int(coarsen_to)
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Coarsen, partition the coarsest graph, then refine back up."""
        rng = np.random.default_rng(self.seed)
        levels: List[Tuple[_WeightedGraph, Optional[np.ndarray]]] = []
        wg = _WeightedGraph.from_graph(graph)
        levels.append((wg, None))
        floor = max(self.coarsen_to, 20 * num_parts)
        while wg.num_vertices > floor:
            match = _heavy_edge_matching(wg, rng)
            coarse, mapping = _contract(wg, match)
            if coarse.num_vertices >= wg.num_vertices * 0.95:
                break  # diminishing returns; stop coarsening
            levels.append((coarse, mapping))
            wg = coarse

        parts = _greedy_grow_initial(wg, num_parts, rng)
        parts = _refine(wg, parts, num_parts, self.tolerance)
        # Project back through the levels, refining at each.
        for level in range(len(levels) - 1, 0, -1):
            fine_wg, _ = levels[level - 1]
            _, mapping = levels[level]
            parts = parts[mapping]
            parts = _refine(fine_wg, parts, num_parts, self.tolerance)
        return PartitionResult(
            graph,
            num_parts,
            vertex_parts=parts,
            kind=EDGE_CUT,
            method=self.name,
        )
