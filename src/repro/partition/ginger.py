"""Ginger: the hybrid-cut heuristic from PowerLyra (Chen et al., TOPC 2019).

Ginger refines PowerLyra's hybrid-cut with a Fennel-style greedy
objective.  The hybrid-cut distinguishes vertices by in-degree:

* a **low-degree** target vertex ``v`` (in-degree < ``threshold``) pulls
  *all* of its in-edges onto a single subgraph, chosen greedily;
* a **high-degree** target vertex has its in-edges scattered by hashing
  each edge's *source* endpoint, so no single worker absorbs a hub.

For low-degree vertices the greedy choice maximizes the Fennel-like
score ``|N_in(v) ∩ V_i| − γ·(|V_i| + ν·|E_i|)`` where the balance term
mixes vertex and edge counts (ν = |V|/|E| normalizes edges into vertex
units), matching Ginger's published objective up to constants.  The
result is well balanced like DBH but with a noticeably lower replication
factor — and still above EBV, which also tracks replicas of *source*
endpoints and both balance dimensions explicitly.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .base import VERTEX_CUT, Partitioner, PartitionResult
from .hashing import mix64

__all__ = ["GingerPartitioner"]


class GingerPartitioner(Partitioner):
    """Hybrid-cut with Fennel-style greedy placement of low-degree vertices.

    Parameters
    ----------
    threshold:
        In-degree above which a target vertex is treated as high-degree.
        ``None`` picks ``max(4, 2 · average in-degree)``, mirroring
        PowerLyra's practice of cutting only true hubs.
    gamma:
        Weight of the balance penalty in the greedy score.
    seed:
        Hash seed for high-degree edge scattering.
    """

    name = "Ginger"

    def __init__(self, threshold: int = None, gamma: float = 1.0, seed: int = 0):
        self.threshold = threshold
        self.gamma = float(gamma)
        self.seed = seed

    def partition(self, graph: Graph, num_parts: int) -> PartitionResult:
        """Run hybrid-cut: greedy for low-degree targets, hash for hubs."""
        m = graph.num_edges
        n = graph.num_vertices
        in_deg = graph.in_degrees()
        threshold = self.threshold
        if threshold is None:
            threshold = max(4, int(2 * m / max(n, 1)))

        edge_parts = np.full(m, -1, dtype=np.int64)
        high = in_deg[graph.dst] >= threshold
        # High-degree targets: scatter in-edges by source hash.
        edge_parts[high] = (
            mix64(graph.src[high], self.seed) % np.uint64(num_parts)
        ).astype(np.int64)

        ecount = np.bincount(edge_parts[high], minlength=num_parts).astype(np.float64)
        vcount = np.zeros(num_parts, dtype=np.float64)
        # parts already holding each vertex (as master or replica).
        parts_of = [set() for _ in range(n)]
        for e in np.nonzero(high)[0].tolist():
            i = int(edge_parts[e])
            for w in (int(graph.src[e]), int(graph.dst[e])):
                if i not in parts_of[w]:
                    parts_of[w].add(i)
                    vcount[i] += 1

        # Low-degree targets: place each target vertex (and all its
        # low-degree in-edges) greedily.  Targets are visited in hashed
        # order — a streaming partitioner sees vertices in effectively
        # random arrival order, not sorted by id (id order would leak the
        # generator's locality, e.g. grid coordinates).
        in_index = graph.in_index()
        low_targets = np.nonzero(np.bincount(graph.dst[~high], minlength=n) > 0)[0]
        low_targets = low_targets[np.argsort(mix64(low_targets, self.seed + 7))]
        # Ginger keeps partitions balanced with a hard capacity on edges
        # (its published edge imbalance is ~1.0 across graphs).
        capacity = 1.05 * m / num_parts + threshold
        score = np.empty(num_parts, dtype=np.float64)
        vertex_target = n / num_parts
        for v in low_targets.tolist():
            all_edges = in_index.edges_of(v)
            unassigned = edge_parts[all_edges] < 0
            edges = all_edges[unassigned]
            if edges.size == 0:
                continue
            sources = in_index.neighbors_of(v)[unassigned]
            # Affinity: how many of v's already-placed in-neighbors (and v
            # itself) live in each part, minus the Fennel-style balance
            # penalty on the vertex load.
            score.fill(0.0)
            for w in sources.tolist():
                for i in parts_of[w]:
                    score[i] += 1.0
            for i in parts_of[v]:
                score[i] += 1.0
            score -= self.gamma * vcount / vertex_target
            over = ecount + edges.size > capacity
            if over.all():
                i = int(np.argmin(ecount))
            else:
                score[over] = -np.inf
                i = int(np.argmax(score))
            edge_parts[edges] = i
            ecount[i] += edges.size
            for w in [v] + sources.tolist():
                if i not in parts_of[w]:
                    parts_of[w].add(i)
                    vcount[i] += 1
        return PartitionResult(
            graph, num_parts, edge_parts=edge_parts, kind=VERTEX_CUT, method=self.name
        )
