"""Bench T5 — regenerate Table V (max/mean message imbalance ratio)."""

POWER_LAW = ("livejournal", "friendster", "twitter")


def test_table5(benchmark, tables345_data, artifact_sink):
    data, _, _, t5 = benchmark.pedantic(
        lambda: tables345_data, rounds=1, iterations=1
    )
    artifact_sink("table5_message_balance", t5)

    # Self-based algorithms stay near 1; NE's ratio is visibly elevated
    # on at least the heavier power-law graphs, tracking its vertex
    # imbalance (the paper's Table V correlation).
    for graph in POWER_LAW:
        assert data.messages[(graph, "EBV")].max_mean_ratio < 1.45
    ne_ratios = [data.messages[(g, "NE")].max_mean_ratio for g in POWER_LAW]
    ebv_ratios = [data.messages[(g, "EBV")].max_mean_ratio for g in POWER_LAW]
    assert max(ne_ratios) > max(ebv_ratios)
