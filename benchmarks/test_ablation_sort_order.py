"""Bench A3 — edge-processing-order ablation (extends Section V-D)."""

from repro.experiments import run_sort_order_ablation


def test_ablation_sort_order(benchmark, config, artifact_sink):
    results, text = benchmark.pedantic(
        lambda: run_sort_order_ablation(config), rounds=1, iterations=1
    )
    artifact_sink("ablation_sort_order", text)

    # Ascending (EBV-sort) produces the lowest replication factor of all
    # four orders; descending is the adversarial worst case.
    assert results["ascending"] == min(results.values())
    assert results["descending"] >= results["ascending"]
    assert results["input"] >= results["ascending"]
