#!/usr/bin/env python
"""Out-of-core streaming benchmark: peak memory and throughput vs in-memory.

Measures the ISSUE-4 acceptance property — partitioning from disk with
:func:`repro.stream.stream_partition` keeps peak memory bounded by
O(chunk + partitioner state), not O(|E|) — by running three scenarios
over the *same* generated edge set:

* ``inmem``       — ``read_edge_list`` then ``StreamingEBVPartitioner``
                    on the fully-loaded graph (the O(|E|) baseline);
* ``stream-text`` — out-of-core over the edge-list text file;
* ``stream-npy``  — out-of-core over the memory-mapped ``.npy`` array.

Each scenario executes in a **fresh subprocess** (this script re-invokes
itself with ``--scenario``), so both its ``tracemalloc`` traced peak
(deterministic, counts numpy + python allocations after interpreter
startup) and its OS peak RSS are isolated per scenario.  Results are
written to ``BENCH_stream.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py              # full suite
    PYTHONPATH=src python benchmarks/bench_stream.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_stream.py --quick --check-memory 2.0

``--check-memory X`` exits nonzero unless the in-memory baseline's
traced peak is at least ``X``× every streaming scenario's traced peak —
the CI ``stream-smoke`` job runs it so a change that silently
materializes the edge list inside the "streaming" path fails the build.
The streaming assignments are additionally required to be byte-identical
to the in-memory partition (always enforced; ``--no-check-identical``
to skip).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

#: (mode, generator kwargs, parts, partitioner window, reader chunk).
#: The quick config is the CI acceptance graph: a ~100k-edge file
#: partitioned with an artificially small reader chunk.
CONFIGS = {
    "quick": dict(
        gen=dict(kind="powerlaw", vertices=13_000, min_degree=3, seed=42),
        parts=8, window=4096, reader_chunk=1024,
    ),
    "full": dict(
        gen=dict(kind="powerlaw", vertices=40_000, min_degree=3, seed=42),
        parts=16, window=4096, reader_chunk=4096,
    ),
}

SCENARIOS = ("inmem", "stream-text", "stream-npy")


def _run_scenario(scenario: str, workdir: str, parts: int, window: int,
                  reader_chunk: int) -> dict:
    """Child-process body: run one scenario under tracemalloc."""
    import tracemalloc

    from repro.graph import read_edge_list
    from repro.partition import StreamingEBVPartitioner
    from repro.stream import NpyEdgeStream, TextEdgeListStream, stream_partition

    text_path = os.path.join(workdir, "graph.txt")
    npy_path = os.path.join(workdir, "graph.npy")
    partitioner = StreamingEBVPartitioner(chunk_size=window)

    tracemalloc.start()
    t0 = time.perf_counter()
    if scenario == "inmem":
        graph = read_edge_list(text_path)
        result = partitioner.partition(graph, parts)
        seconds = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
        num_edges = graph.num_edges
        result.edge_parts.tofile(os.path.join(workdir, "inmem_parts.bin"))
    else:
        if scenario == "stream-text":
            stream = TextEdgeListStream(text_path, chunk_size=reader_chunk)
            spill = os.path.join(workdir, "spill-text")
        else:
            stream = NpyEdgeStream(npy_path, chunk_size=reader_chunk)
            spill = os.path.join(workdir, "spill-npy")
        spilled = stream_partition(stream, partitioner, parts, spill, overwrite=True)
        seconds = time.perf_counter() - t0
        peak = tracemalloc.get_traced_memory()[1]
        num_edges = spilled.num_edges
    tracemalloc.stop()

    import resource

    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KB elsewhere
        peak_rss_kb //= 1024
    return {
        "scenario": scenario,
        "seconds": seconds,
        "traced_peak_bytes": int(peak),
        "peak_rss_kb": peak_rss_kb,
        "num_edges": int(num_edges),
        "edges_per_second": num_edges / seconds if seconds > 0 else float("inf"),
    }


def _spawn_scenario(scenario: str, workdir: str, parts: int, window: int,
                    reader_chunk: int) -> dict:
    """Run one scenario in a fresh interpreter; parse its JSON report."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, os.path.abspath(__file__),
            "--scenario", scenario, "--workdir", workdir,
            "--parts", str(parts), "--window", str(window),
            "--reader-chunk", str(reader_chunk),
        ],
        capture_output=True, text=True, env=env, check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"scenario {scenario} failed:\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~100k-edge graph for CI smoke runs")
    parser.add_argument("--out", type=Path, default=Path("BENCH_stream.json"))
    parser.add_argument("--workdir", default=None,
                        help="where to place the generated inputs and spills "
                        "(default: a fresh temp dir)")
    parser.add_argument("--check-memory", type=float, default=None, metavar="X",
                        help="exit 1 unless the in-memory traced peak is >= X "
                        "times every streaming scenario's traced peak")
    parser.add_argument("--no-check-identical", action="store_true",
                        help="skip the streaming==in-memory assignment check")
    # child-process mode
    parser.add_argument("--scenario", choices=SCENARIOS, help=argparse.SUPPRESS)
    parser.add_argument("--parts", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--window", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--reader-chunk", type=int, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.scenario:
        print(json.dumps(_run_scenario(
            args.scenario, args.workdir, args.parts, args.window,
            args.reader_chunk,
        )))
        return 0

    from repro.graph import generate_graph, write_edge_list
    from repro.stream import save_edge_npy

    config = CONFIGS["quick" if args.quick else "full"]
    if args.workdir is None:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="bench-stream-")
        workdir = tmp.name
    else:
        workdir = args.workdir
        os.makedirs(workdir, exist_ok=True)

    graph = generate_graph(**config["gen"])
    write_edge_list(graph, os.path.join(workdir, "graph.txt"))
    save_edge_npy(os.path.join(workdir, "graph.npy"), graph)
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"parts={config['parts']} window={config['window']} "
          f"reader_chunk={config['reader_chunk']}")

    records = {}
    for scenario in SCENARIOS:
        rec = _spawn_scenario(
            scenario, workdir, config["parts"], config["window"],
            config["reader_chunk"],
        )
        records[scenario] = rec
        print(f"{scenario:12s} {rec['seconds']:7.2f}s "
              f"traced_peak={rec['traced_peak_bytes'] / 1e6:7.2f}MB "
              f"peak_rss={rec['peak_rss_kb'] / 1024:7.1f}MB "
              f"{rec['edges_per_second']:9.0f} edges/s")

    identical = None
    if not args.no_check_identical:
        inmem = np.fromfile(os.path.join(workdir, "inmem_parts.bin"),
                            dtype=np.int64)
        identical = all(
            np.array_equal(
                inmem,
                np.fromfile(
                    os.path.join(workdir, f"spill-{tag}", "edge_parts.bin"),
                    dtype=np.int64,
                ),
            )
            for tag in ("text", "npy")
        )

    baseline = records["inmem"]["traced_peak_bytes"]
    ratios = {
        s: baseline / records[s]["traced_peak_bytes"]
        for s in ("stream-text", "stream-npy")
    }
    payload = {
        "benchmark": "bench_stream",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "graph": {
            **config["gen"],
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "parts": config["parts"],
        "window": config["window"],
        "reader_chunk": config["reader_chunk"],
        "results": records,
        "memory_ratio_vs_inmem": ratios,
        "streaming_identical_to_inmem": identical,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    for s, ratio in ratios.items():
        print(f"memory ratio inmem/{s}: {ratio:.2f}x")

    if identical is False:
        print("FAIL: streaming assignments differ from the in-memory "
              "partition", file=sys.stderr)
        return 1
    if args.check_memory is not None:
        slack = [s for s, r in ratios.items() if r < args.check_memory]
        if slack:
            for s in slack:
                print(f"FAIL: inmem traced peak is only {ratios[s]:.2f}x of "
                      f"{s} (required {args.check_memory:.2f}x)",
                      file=sys.stderr)
            return 1
        print(f"memory check passed (>= {args.check_memory:.2f}x everywhere)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
