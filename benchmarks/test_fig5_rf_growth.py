"""Bench F5 — regenerate Figure 5 (replication-factor growth curves)."""

from repro.experiments import run_fig5


def test_fig5(benchmark, config, artifact_sink):
    curves, text = benchmark.pedantic(
        lambda: run_fig5(config), rounds=1, iterations=1
    )
    artifact_sink("fig5_rf_growth", text)

    for graph_name, graph_curves in curves.items():
        for p in (4, 8, 16, 32):
            _, y_sort = graph_curves[("sort", p)]
            _, y_unsort = graph_curves[("unsort", p)]
            # Sorted preprocessing ends at or below unsorted.
            assert y_sort[-1] <= y_unsort[-1] + 1e-9, (graph_name, p)
        # The sort-vs-unsort gap grows with the number of subgraphs
        # (compare the extremes, as in the paper's reading of Figure 5).
        gap4 = graph_curves[("unsort", 4)][1][-1] - graph_curves[("sort", 4)][1][-1]
        gap32 = graph_curves[("unsort", 32)][1][-1] - graph_curves[("sort", 32)][1][-1]
        assert gap32 >= gap4 - 0.05, graph_name
