#!/usr/bin/env python
"""Checkpoint-overhead benchmark: what does crash tolerance cost?

Runs PageRank on a seeded power-law graph with no checkpointing (the
baseline), then with ``checkpoint_every`` ∈ {1, 5}, timing best-of-N
real wall-clock end-to-end and measuring the snapshot footprint on
disk.  It also times a resume from the mid-run snapshot, and verifies
(not just times) that the resumed run is bit-identical to the baseline
before reporting anything — a benchmark of a wrong resume would be
meaningless.  Results land in ``BENCH_checkpoint.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py            # full
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --check-overhead 0.5

``--check-overhead X`` exits nonzero if checkpointing every 5th
superstep costs more than fraction ``X`` of the baseline wall (e.g.
``0.5`` = +50%); the every-superstep cadence is reported but not gated
— it is the pathological worst case, not the recommended setting.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.bsp import BSPEngine, build_distributed_graph  # noqa: E402
from repro.checkpoint import list_snapshots  # noqa: E402
from repro.frameworks import make_program  # noqa: E402
from repro.graph import generate_graph  # noqa: E402
from repro.partition import DBHPartitioner  # noqa: E402

FULL_CONFIG = dict(vertices=100_000, parts=4, pagerank_iters=30, repeats=3)
QUICK_CONFIG = dict(vertices=8_000, parts=2, pagerank_iters=12, repeats=2)


def _dir_bytes(path: str) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            total += os.path.getsize(os.path.join(dirpath, name))
    return total


def _identical(a, b) -> bool:
    return (
        a.num_supersteps == b.num_supersteps
        and np.array_equal(a.values, b.values, equal_nan=True)
        and a.total_messages == b.total_messages
        and a.comp == b.comp
        and a.comm == b.comm
    )


def run_benchmark(config, workdir: str) -> dict:
    graph = generate_graph(
        "powerlaw", vertices=config["vertices"], seed=7, name="bench-ckpt"
    )
    dgraph = build_distributed_graph(DBHPartitioner().partition(graph, config["parts"]))
    iters = config["pagerank_iters"]

    def pagerank():
        return make_program("PR", graph, pagerank_iters=iters)

    def best_of(thunk):
        walls = []
        result = None
        for _ in range(config["repeats"]):
            t0 = time.perf_counter()
            result = thunk()
            walls.append(time.perf_counter() - t0)
        return result, min(walls)

    baseline_run, baseline_wall = best_of(
        lambda: BSPEngine().run(dgraph, pagerank())
    )

    scenarios = {}
    for every in (1, 5):
        root = os.path.join(workdir, f"every-{every}")

        def checkpointed(root=root, every=every):
            shutil.rmtree(root, ignore_errors=True)
            return BSPEngine(
                checkpoint_dir=root, checkpoint_every=every, checkpoint_keep=None
            ).run(dgraph, pagerank())

        ck_run, ck_wall = best_of(checkpointed)
        if not _identical(ck_run, baseline_run):
            raise SystemExit(f"checkpointed run (every={every}) diverged from baseline")

        snapshots = list_snapshots(root)
        mid = snapshots[len(snapshots) // 2 - 1] if len(snapshots) > 1 else snapshots[0]
        t0 = time.perf_counter()
        resumed = BSPEngine().run(dgraph, pagerank(), resume_from=mid)
        resume_wall = time.perf_counter() - t0
        if not _identical(resumed, baseline_run):
            raise SystemExit(f"resumed run (every={every}) diverged from baseline")

        scenarios[f"every-{every}"] = {
            "wall_seconds": ck_wall,
            "overhead_fraction": (ck_wall - baseline_wall) / baseline_wall,
            "snapshots": len(snapshots),
            "snapshot_bytes_total": _dir_bytes(root),
            "snapshot_bytes_each": _dir_bytes(snapshots[-1]),
            "resume_from_superstep": resumed.resumed_from,
            "resume_wall_seconds": resume_wall,
            "resume_identical": True,
        }

    return {
        "graph": {
            "name": graph.name,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "parts": config["parts"],
        "pagerank_iters": iters,
        "supersteps": baseline_run.num_supersteps,
        "repeats": config["repeats"],
        "baseline_wall_seconds": baseline_wall,
        "scenarios": scenarios,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small graph for CI smoke runs"
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_checkpoint.json"),
        help="report output path",
    )
    parser.add_argument(
        "--check-overhead", type=float, default=None, metavar="FRACTION",
        help="exit nonzero if every-5 checkpointing costs more than this "
        "fraction of the baseline wall (e.g. 0.5 = +50%%)",
    )
    args = parser.parse_args(argv)

    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    workdir = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        report = run_benchmark(config, workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "checkpoint",
        "quick": bool(args.quick),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus_available": len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count(),
        **report,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    base = report["baseline_wall_seconds"]
    print(f"baseline: {base:.3f}s over {report['supersteps']} supersteps")
    for name, s in report["scenarios"].items():
        print(
            f"{name}: {s['wall_seconds']:.3f}s "
            f"({s['overhead_fraction'] * 100:+.1f}%), "
            f"{s['snapshots']} snapshots, "
            f"{s['snapshot_bytes_each'] / 1e6:.2f} MB each; "
            f"resume from step {s['resume_from_superstep']} "
            f"in {s['resume_wall_seconds']:.3f}s (bit-identical)"
        )
    print(f"report written to {args.out}")

    if args.check_overhead is not None:
        got = report["scenarios"]["every-5"]["overhead_fraction"]
        if got > args.check_overhead:
            print(
                f"FAIL: every-5 checkpoint overhead {got:.2%} exceeds "
                f"the {args.check_overhead:.2%} gate",
                file=sys.stderr,
            )
            return 1
        print(f"overhead gate ok: every-5 costs {got:.2%} <= {args.check_overhead:.2%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
