"""Bench T2 — regenerate Table II (CC/4-worker breakdown over LiveJournal)."""

from repro.experiments import run_breakdown


def test_table2(benchmark, config, artifact_sink):
    rows, runs, table_text, _ = benchmark.pedantic(
        lambda: run_breakdown(config), rounds=1, iterations=1
    )
    artifact_sink("table2_breakdown", table_text)

    times = {r.method: r.execution_time for r in rows}
    dc = {r.method: r.delta_c for r in rows}
    # EBV finishes in the fastest half; the local-based group's ΔC
    # dominates its own comp+comm efficiency (the paper's explanation of
    # NE/METIS losing despite low communication).
    ordered = sorted(times, key=times.get)
    assert ordered.index("EBV") <= 2
    # EBV never has the worst synchronization spread; at paper scale the
    # worst belongs to the vertex/edge-imbalanced partitions.
    assert max(dc, key=dc.get) != "EBV"
