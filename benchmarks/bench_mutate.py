#!/usr/bin/env python
"""Dynamic-graph benchmark: replication-factor drift and warm-start savings.

Measures the ISSUE-10 acceptance properties of :mod:`repro.mutate`:

* **Bounded drift** — applying an edge-mutation batch incrementally
  (survivors keep their parts, only inserts pass through the seeded
  assigner) must track a full repartition of the mutated graph.  For
  each churn fraction the script reports ``rf_after / rf_full`` and the
  incremental-vs-full wall time.
* **Warm-start savings** — the delta apps (CC-DELTA / PR-DELTA) seeded
  from the pre-mutation run must converge to the rebuild answer in no
  more supersteps/messages than a cold rerun.

Usage::

    PYTHONPATH=src python benchmarks/bench_mutate.py              # full suite
    PYTHONPATH=src python benchmarks/bench_mutate.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_mutate.py --quick --check-drift 1.15

``--check-drift X`` exits nonzero if any incremental scenario's drift
exceeds ``X`` — the CI ``mutate-smoke`` job runs it so a change that
silently degrades incremental maintenance fails the build.  The warm
answers are always required to match the rebuild (bit-for-bit for CC,
``<= 1e-8`` max abs diff for PageRank).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

#: The quick config is the CI acceptance graph (~100k directed edges).
CONFIGS = {
    "quick": dict(
        gen=dict(kind="powerlaw", vertices=13_000, min_degree=3, seed=42,
                 directed=True),
        parts=8,
    ),
    "full": dict(
        gen=dict(kind="powerlaw", vertices=40_000, min_degree=3, seed=42,
                 directed=True),
        parts=16,
    ),
}

CHURN_FRACTIONS = (0.01, 0.05, 0.10)
PR_TOL = 1e-12
PR_ITERS = 300


def churn_batch(graph, fraction, seed=7):
    """A mixed batch touching ``fraction`` of the edge set.

    Half the ops delete existing edges (distinct ids, so parallel
    copies are never over-deleted), half insert new ones — a tenth of
    the inserts grow the vertex set, mirroring real dynamic graphs.
    """
    from repro.mutate import MutationBatch

    rng = np.random.default_rng(seed)
    n_ops = max(2, int(graph.num_edges * fraction))
    n_delete = n_ops // 2
    n_insert = n_ops - n_delete
    batch = MutationBatch()
    for eid in np.sort(rng.choice(graph.num_edges, size=n_delete, replace=False)):
        batch.delete(int(graph.src[eid]), int(graph.dst[eid]))
    n = graph.num_vertices
    grown = 0
    for k in range(n_insert):
        u = int(rng.integers(0, n))
        if k % 10 == 0:
            v = n + grown
            grown += 1
        else:
            v = int(rng.integers(0, n))
            if v == u:
                v = (v + 1) % n
        batch.insert(u, v)
    return batch


def drift_sweep(graph, parts):
    """Incremental vs full repartition across churn fractions."""
    from repro.mutate import apply_mutations
    from repro.partition import StreamingEBVPartitioner

    base = StreamingEBVPartitioner().partition(graph, parts)
    rows = []
    for fraction in CHURN_FRACTIONS:
        batch = churn_batch(graph, fraction)
        t0 = time.perf_counter()
        out = apply_mutations(base, batch, repartition_threshold=1.0)
        incr_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        full = StreamingEBVPartitioner().partition(out.graph, parts)
        full_seconds = time.perf_counter() - t0
        from repro.partition import replication_factor

        rf_full = replication_factor(full)
        rows.append({
            "churn_fraction": fraction,
            "num_ops": len(batch),
            "mode": out.mode,
            "reassigned_edges": out.reassigned_edges,
            "rf_before": out.rf_before,
            "rf_after": out.rf_after,
            "rf_full": rf_full,
            "drift": out.rf_after / rf_full,
            "incremental_seconds": incr_seconds,
            "full_repartition_seconds": full_seconds,
            "speedup_vs_full": full_seconds / incr_seconds
            if incr_seconds > 0 else float("inf"),
        })
        print(f"churn={fraction:5.2%} ops={len(batch):6d} "
              f"rf_after={out.rf_after:.4f} rf_full={rf_full:.4f} "
              f"drift={rows[-1]['drift']:.4f} "
              f"incr={incr_seconds:6.3f}s full={full_seconds:6.3f}s "
              f"({rows[-1]['speedup_vs_full']:5.1f}x)")
    return rows


def warm_start_sweep(graph, parts, backend):
    """Warm delta apps vs cold rebuild on the mutated graph."""
    from repro.bsp import BSPEngine, build_distributed_graph
    from repro.frameworks import make_program
    from repro.mutate import apply_mutations, cc_warm_labels, pr_warm_values
    from repro.partition import StreamingEBVPartitioner

    base = StreamingEBVPartitioner().partition(graph, parts)
    batch = churn_batch(graph, 0.05)
    mut = apply_mutations(base, batch, repartition_threshold=1.0)
    engine = BSPEngine(backend=backend)
    base_dg = build_distributed_graph(base)
    dg = build_distributed_graph(mut.partition)

    rows = []
    for app in ("cc", "pr"):
        if app == "cc":
            prev = engine.run(base_dg, make_program("CC", graph))
            warm = engine.run(dg, make_program(
                "CC-DELTA", mut.graph,
                prev_values=cc_warm_labels(prev.values, mut),
            ))
            rebuild = engine.run(dg, make_program("CC", mut.graph))
            matched = bool(np.array_equal(warm.values, rebuild.values))
            max_diff = 0.0 if matched else float("inf")
        else:
            kw = dict(pagerank_iters=PR_ITERS, pagerank_tol=PR_TOL)
            prev = engine.run(base_dg, make_program("PR", graph, **kw))
            warm = engine.run(dg, make_program(
                "PR-DELTA", mut.graph,
                prev_values=pr_warm_values(prev.values, mut.graph.num_vertices),
                delta_iters=PR_ITERS, pagerank_tol=PR_TOL,
            ))
            rebuild = engine.run(dg, make_program("PR", mut.graph, **kw))
            max_diff = float(np.max(np.abs(warm.values - rebuild.values)))
            matched = max_diff <= 1e-8
        rows.append({
            "app": app,
            "backend": backend,
            "warm_supersteps": warm.num_supersteps,
            "rebuild_supersteps": rebuild.num_supersteps,
            "warm_messages": int(warm.total_messages),
            "rebuild_messages": int(rebuild.total_messages),
            "superstep_savings": 1.0 - warm.num_supersteps / rebuild.num_supersteps,
            "message_savings": 1.0 - warm.total_messages / rebuild.total_messages
            if rebuild.total_messages else 0.0,
            "matched_rebuild": matched,
            "max_abs_diff": max_diff,
        })
        print(f"{app:2s} warm={warm.num_supersteps:3d} steps "
              f"rebuild={rebuild.num_supersteps:3d} steps  "
              f"warm_msgs={warm.total_messages} "
              f"rebuild_msgs={rebuild.total_messages}  "
              f"matched={matched}")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="~100k-edge graph for CI smoke runs")
    parser.add_argument("--out", type=Path, default=Path("BENCH_mutate.json"))
    parser.add_argument("--backend", default="serial",
                        help="BSP backend for the warm-start sweep")
    parser.add_argument("--check-drift", type=float, default=None, metavar="X",
                        help="exit 1 if any incremental drift exceeds X")
    args = parser.parse_args(argv)

    from repro.graph import generate_graph

    config = CONFIGS["quick" if args.quick else "full"]
    graph = generate_graph(**config["gen"])
    print(f"graph: |V|={graph.num_vertices} |E|={graph.num_edges} "
          f"parts={config['parts']} (directed)")

    drift_rows = drift_sweep(graph, config["parts"])
    warm_rows = warm_start_sweep(graph, config["parts"], args.backend)

    payload = {
        "benchmark": "bench_mutate",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "graph": {
            **config["gen"],
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "parts": config["parts"],
        "churn_fractions": list(CHURN_FRACTIONS),
        "drift": drift_rows,
        "warm_start": warm_rows,
        "max_drift": max(r["drift"] for r in drift_rows),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    print(f"max drift across churn sweep: {payload['max_drift']:.4f}")

    failed = [r for r in warm_rows if not r["matched_rebuild"]]
    if failed:
        for r in failed:
            print(f"FAIL: warm {r['app']} diverged from rebuild "
                  f"(max abs diff {r['max_abs_diff']:g})", file=sys.stderr)
        return 1
    if args.check_drift is not None:
        over = [r for r in drift_rows if r["drift"] > args.check_drift]
        if over:
            for r in over:
                print(f"FAIL: drift {r['drift']:.4f} at churn "
                      f"{r['churn_fraction']:.2%} exceeds "
                      f"{args.check_drift:.4f}", file=sys.stderr)
            return 1
        print(f"drift check passed (<= {args.check_drift:.4f} everywhere)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
