#!/usr/bin/env python
"""End-to-end build benchmark: partition → distributed build → BSP run.

Times every stage of the evaluation pipeline on the generator suite and
compares the vectorized :func:`repro.bsp.build_distributed_graph`
against the legacy per-vertex Python implementation it replaced
(:func:`repro.bsp.build_distributed_graph_legacy`).  Results are written
as ``BENCH_build.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_build.py              # full suite
    PYTHONPATH=src python benchmarks/bench_build.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_build.py --check-speedup 1.0

``--check-speedup X`` exits nonzero unless the vectorized build beats
the legacy build by at least ``X``× on *every* configuration — the CI
smoke job runs ``--quick --check-speedup 1.0`` so a regression that
makes the rewrite slower than the loop it replaced fails the build.

The acceptance configuration for the ISSUE-2 tentpole is the full
suite's ``powerlaw`` entry: 100k vertices at p=16, where the vectorized
build must be ≥5× faster than the legacy path.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.bsp import (  # noqa: E402
    BSPEngine,
    build_distributed_graph,
    build_distributed_graph_legacy,
)
from repro.apps import PageRank  # noqa: E402
from repro.graph import generate_graph  # noqa: E402
from repro.partition import DBHPartitioner, EBVPartitioner  # noqa: E402

#: (name, generator kwargs, partitioner factory, num_parts).  DBH is the
#: partition stage for the large configs because it is itself vectorized,
#: so the build timings dominate; EBV appears once to keep a greedy
#: (replica-minimizing, more mirrors per worker pair) layout in the mix.
FULL_CONFIGS = [
    ("powerlaw-100k-p16", dict(kind="powerlaw", vertices=100_000, seed=1), DBHPartitioner, 16),
    ("powerlaw-50k-p8-ebv", dict(kind="powerlaw", vertices=50_000, seed=2), EBVPartitioner, 8),
    ("road-90k-p16", dict(kind="road", vertices=90_000, seed=3), DBHPartitioner, 16),
    ("rmat-65k-p16", dict(kind="rmat", vertices=65_000, edge_factor=8, seed=4), DBHPartitioner, 16),
    ("er-50k-p16", dict(kind="er", vertices=50_000, seed=5), DBHPartitioner, 16),
    ("ba-20k-p16", dict(kind="ba", vertices=20_000, seed=6), DBHPartitioner, 16),
]

QUICK_CONFIGS = [
    ("powerlaw-8k-p8", dict(kind="powerlaw", vertices=8_000, seed=1), DBHPartitioner, 8),
    ("road-6k-p8", dict(kind="road", vertices=6_400, seed=3), DBHPartitioner, 8),
    ("rmat-4k-p8", dict(kind="rmat", vertices=4_000, edge_factor=8, seed=4), DBHPartitioner, 8),
]


def _best_of(fn, repeats: int) -> tuple:
    """Run ``fn`` ``repeats`` times; return (best seconds, last result)."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def run_config(name, gen_kwargs, partitioner_cls, p, repeats, pagerank_iters):
    graph = generate_graph(**gen_kwargs)

    t_part, result = _best_of(lambda: partitioner_cls().partition(graph, p), 1)
    t_new, dg = _best_of(lambda: build_distributed_graph(result), repeats)
    t_old, _ = _best_of(lambda: build_distributed_graph_legacy(result), repeats)
    engine = BSPEngine()
    program = PageRank(graph.num_vertices, max_iters=pagerank_iters)
    t_run, run = _best_of(lambda: engine.run(dg, program), 1)

    record = {
        "config": name,
        "graph": {
            "kind": gen_kwargs["kind"],
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "partitioner": partitioner_cls.name,
        "num_parts": p,
        "replication_factor": dg.replication_factor(),
        "timings_s": {
            "partition": t_part,
            "build_vectorized": t_new,
            "build_legacy": t_old,
            "bsp_pagerank": t_run,
            "end_to_end": t_part + t_new + t_run,
        },
        "build_speedup": t_old / t_new if t_new > 0 else float("inf"),
        "bsp_supersteps": run.num_supersteps,
    }
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small graphs for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_build.json"),
        help="output JSON path (default: ./BENCH_build.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats for the vectorized and legacy builds (best-of)",
    )
    parser.add_argument(
        "--pagerank-iters", type=int, default=5,
        help="PageRank iterations for the BSP stage",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless every config's vectorized build is >= X times "
        "faster than the legacy build",
    )
    args = parser.parse_args(argv)

    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    records = []
    for name, gen_kwargs, partitioner_cls, p in configs:
        rec = run_config(
            name, gen_kwargs, partitioner_cls, p, args.repeats, args.pagerank_iters
        )
        records.append(rec)
        t = rec["timings_s"]
        print(
            f"{name:24s} |V|={rec['graph']['num_vertices']:>7d} "
            f"|E|={rec['graph']['num_edges']:>8d} p={p:<3d} "
            f"partition={t['partition']:.3f}s "
            f"build={t['build_vectorized']:.3f}s "
            f"legacy={t['build_legacy']:.3f}s "
            f"bsp={t['bsp_pagerank']:.3f}s "
            f"speedup={rec['build_speedup']:.1f}x"
        )

    payload = {
        "benchmark": "bench_build",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": records,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")

    if args.check_speedup is not None:
        slow = [r for r in records if r["build_speedup"] < args.check_speedup]
        if slow:
            for r in slow:
                print(
                    f"FAIL: {r['config']} vectorized build only "
                    f"{r['build_speedup']:.2f}x vs legacy "
                    f"(required {args.check_speedup:.2f}x)",
                    file=sys.stderr,
                )
            return 1
        print(f"speedup check passed (>= {args.check_speedup:.2f}x everywhere)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
