"""Bench A5 — the local-search refinement post-pass on every partitioner."""

from repro.analysis import render_table
from repro.partition import (
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    HDRFPartitioner,
    RandomEdgeHashPartitioner,
    refine_vertex_cut,
    replication_factor,
)


def test_ablation_refinement(benchmark, config, artifact_sink):
    graph = config.graphs()["livejournal"]
    p = 12

    def sweep():
        rows = []
        for cls in (EBVPartitioner, GingerPartitioner, DBHPartitioner,
                    HDRFPartitioner, RandomEdgeHashPartitioner):
            base = cls().partition(graph, p)
            refined = refine_vertex_cut(base)
            rf0 = replication_factor(base)
            rf1 = replication_factor(refined)
            rows.append((base.method, f"{rf0:.3f}", f"{rf1:.3f}",
                         f"{(rf0 - rf1) / rf0 * 100:.1f}%"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["Method", "RF before", "RF after", "saved"],
        rows,
        title=f"Ablation A5 — refinement post-pass (livejournal stand-in, p={p})",
    )
    artifact_sink("ablation_refinement", text)

    saved = {method: float(s.rstrip("%")) for method, _, _, s in rows}
    # Refinement helps the oblivious partitioners far more than EBV —
    # EBV's greedy already sits near a local optimum of the objective.
    assert saved["RandomEdge"] > saved["EBV"]
