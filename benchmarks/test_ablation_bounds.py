"""Bench A1 — Theorem 1/2 bound tightness across the alpha/beta grid."""

from repro.experiments import run_bounds_ablation


def test_ablation_bounds(benchmark, config, artifact_sink):
    rows, text = benchmark.pedantic(
        lambda: run_bounds_ablation(config), rounds=1, iterations=1
    )
    artifact_sink("ablation_bounds", text)

    for r in rows:
        assert r["edge_imbalance"] <= r["edge_bound"]
        assert r["vertex_imbalance"] <= r["vertex_bound"]
    # The bounds are worst-case and extremely loose in practice — the
    # measured factors sit near 1 while bounds run into the hundreds.
    assert max(r["edge_imbalance"] for r in rows) < 2.0
    assert min(r["edge_bound"] for r in rows) > 2.0
