"""Benchmark harness configuration.

Every benchmark regenerates one paper artifact (table or figure),
prints it, and archives the rendered text under ``benchmarks/out/`` so
EXPERIMENTS.md can quote it.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — stand-in graph scale (default 0.5; the full
  DESIGN.md configuration is 1.0).
* ``REPRO_BENCH_FULL=1`` — use the paper's full worker sweeps for
  Figures 2–3 instead of the reduced default grid.
"""

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.tables345 import run_tables345

OUT_DIR = Path(__file__).parent / "out"


def _bench_config() -> ExperimentConfig:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    cfg = ExperimentConfig(scale=scale)
    if os.environ.get("REPRO_BENCH_FULL", "0") != "1":
        cfg.figure_workers = {
            "usa-road": [4, 8, 16],
            "livejournal": [4, 8, 16],
            "friendster": [8, 16, 32],
            "twitter": [8, 16, 32],
        }
        cfg.pagerank_iters = 10
    return cfg


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    return _bench_config()


@pytest.fixture(scope="session")
def tables345_data(config):
    """Tables III/IV/V share one set of partition + CC runs."""
    return run_tables345(config)


@pytest.fixture(scope="session")
def artifact_sink():
    """Write a rendered artifact to benchmarks/out/<name>.txt and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()
        print(text)

    return save
