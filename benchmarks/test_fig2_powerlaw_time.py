"""Bench F2 — regenerate Figure 2 (CC/PR/SSSP on power-law graphs).

The full 8-system × 3-app × 3-graph sweep.  The headline claim: EBV has
the lowest (or near-lowest) modeled execution time among the six
partition algorithms on power-law graphs, with its margin widening on
the heavier-tailed graphs.
"""

from repro.experiments import run_fig2
from repro.experiments.figures23 import render_panels

PARTITIONERS = ("EBV", "Ginger", "DBH", "CVC", "NE", "METIS")


def test_fig2(benchmark, config, artifact_sink):
    panels, text = benchmark.pedantic(
        lambda: run_fig2(config), rounds=1, iterations=1
    )
    artifact_sink("fig2_powerlaw_time", text)

    # Shape assertion: across all power-law panels and worker counts,
    # EBV's average rank among the six partitioners is in the top half.
    ranks = []
    for (app, graph), panel in panels.items():
        workers = config.figure_workers[graph]
        for i in range(len(workers)):
            times = {m: panel[m][i] for m in PARTITIONERS if m in panel}
            ordered = sorted(times, key=times.get)
            ranks.append(ordered.index("EBV"))
    avg_rank = sum(ranks) / len(ranks)
    assert avg_rank <= 2.0, f"EBV average rank {avg_rank:.2f} too low"
