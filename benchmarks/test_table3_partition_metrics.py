"""Bench T3 — regenerate Table III (imbalance + replication factors)."""

POWER_LAW = ("livejournal", "friendster", "twitter")


def test_table3(benchmark, tables345_data, artifact_sink):
    data, t3, _, _ = benchmark.pedantic(
        lambda: tables345_data, rounds=1, iterations=1
    )
    artifact_sink("table3_partition_metrics", t3)

    for graph in POWER_LAW:
        ebv = data.metrics[(graph, "EBV")]
        # Headline claim: EBV cuts the replication factor versus the
        # other self-based algorithms (paper: by >= 21.8%).
        for other in ("Ginger", "DBH", "CVC"):
            assert ebv.replication < data.metrics[(graph, other)].replication
        # While staying balanced on both axes.
        assert ebv.edge_imbalance < 1.2 and ebv.vertex_imbalance < 1.2
        # The local-based failure modes on power-law graphs:
        assert data.metrics[(graph, "NE")].vertex_imbalance > 1.15
        assert data.metrics[(graph, "METIS")].edge_imbalance > 1.5
