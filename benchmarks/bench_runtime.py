#!/usr/bin/env python
"""Runtime-backend benchmark: the same BSP run on every backend.

Partitions each configured graph once, builds the distributed graph
once, then executes PageRank and Connected Components through the BSP
engine on every selected :mod:`repro.runtime` backend (default
``serial``, ``thread``, ``process``; add ``--backend socket`` for the
multi-node TCP backend on spawned localhost workers), timing real
wall-clock — best-of-N end-to-end plus the engine's
per-superstep-stage walls (compute vs. replica exchange).  Results are
written as ``BENCH_runtime.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py            # full suite
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_runtime.py --check-speedup 1.5
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick --trace \
        --check-overhead 5
    PYTHONPATH=src python benchmarks/bench_runtime.py --quick --trace \
        --backend socket                                 # localhost TCP

``--backend NAME`` (repeatable) replaces the default backend set;
``serial`` is always kept as the bit-identity/timing reference.  For
the ``socket`` backend with ``--trace`` the trace block additionally
reports the wire walls summed from the recorder's ``wire.*`` spans —
``wire_s.collect`` (worker-side outbox serialization), ``wire_s.send``
/ ``wire_s.recv`` (coordinator frame I/O per exchange phase) and
``wire_s.state`` (explicit per-superstep state pulls, a cost only
traced runs pay) — so serialize vs. transport time is visible
separately from the stage walls.

``--trace`` runs one extra best-of-N pass per (app, backend) with a
:class:`repro.obs.TraceRecorder` attached and adds a ``trace`` block to
each backend entry in ``BENCH_runtime.json``: the traced wall,
``trace_overhead`` (traced best / untraced best — the cost of enabling
tracing), and the load-balance figures computed from the recorded
per-worker spans (``straggler_ratio``, per-stage ``stage_imbalance``,
per-worker barrier seconds).  Plain and traced passes are interleaved
inside one loop so both see the same background load.
``--check-overhead PCT`` exits nonzero if the *aggregate* tracing
overhead — sum of traced bests over sum of untraced bests across all
entries, also written as ``trace_overhead_aggregate`` — exceeds ``PCT``
percent; single entries are millisecond-scale and individually too
noisy to gate on.

Since PR 7 both superstep stages run in the workers (the replica
exchange is no longer coordinator-serial), so the report breaks the
speedup down per stage: ``stage_speedup_vs_serial`` gives the compute
and exchange walls of each parallel backend against the serial
reference's same stage.

``--check-speedup X`` exits nonzero unless the ``process`` backend
beats ``serial`` by at least ``X``× end-to-end on PageRank for every
configuration *and* its exchange stage is no slower than serial's
(exchange-stage speedup ≥ 1.0 — the stage must actually scale, not
merely hide behind compute) — *when enough CPUs are visible to make
that physically possible*.  On a host where fewer than 2 CPUs are
schedulable (``cpus_available`` in the report), no parallel backend can
beat serial; the check then documents the limiting factor in
``speedup_notes`` instead of failing, so the report always states
exactly which stage (or machine limit) prevents the speedup.

The ISSUE-3 acceptance configuration is the full suite's
``powerlaw-200k-p4`` entry: PageRank on a 200k-vertex power-law graph
at p=4, target ≥1.5× real wall-clock over serial.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.bsp import BSPEngine, build_distributed_graph  # noqa: E402
from repro.frameworks import make_program  # noqa: E402
from repro.graph import generate_graph  # noqa: E402
from repro.obs import TraceRecorder, summarize_trace  # noqa: E402
from repro.partition import DBHPartitioner  # noqa: E402
from repro.pipeline import BACKENDS  # noqa: E402

#: (name, generator kwargs, num_parts).  DBH partitions everything: it
#: is fast and vectorized, so the BSP run timings dominate the setup.
FULL_CONFIGS = [
    ("powerlaw-200k-p4", dict(kind="powerlaw", vertices=200_000, seed=1), 4),
    ("powerlaw-100k-p8", dict(kind="powerlaw", vertices=100_000, seed=2), 8),
    ("rmat-65k-p4", dict(kind="rmat", vertices=65_000, edge_factor=8, seed=4), 4),
]

QUICK_CONFIGS = [
    ("powerlaw-5k-p2", dict(kind="powerlaw", vertices=5_000, seed=1), 2),
    ("powerlaw-5k-p4", dict(kind="powerlaw", vertices=5_000, seed=1), 4),
]

#: apps swept per configuration (registry spec strings).
APPS_UNDER_TEST = ("pagerank", "cc")

DEFAULT_BACKENDS = ("serial", "thread", "process")

#: every backend the harness can time (--backend choices).
KNOWN_BACKENDS = ("serial", "thread", "process", "socket")


def cpus_available() -> int:
    """Schedulable CPUs (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_run(engine, dgraph, make_prog, repeats):
    """Best-of-``repeats`` wall-clock; returns (seconds, best run)."""
    best_s = float("inf")
    best_run = None
    for _ in range(repeats):
        program = make_prog()
        t0 = time.perf_counter()
        run = engine.run(dgraph, program)
        elapsed = time.perf_counter() - t0
        if elapsed < best_s:
            best_s = elapsed
            best_run = run
    return best_s, best_run


def _time_paired(backend_name, dgraph, make_prog, repeats):
    """Interleaved plain/traced best-of-``repeats``.

    Alternating the two variants inside one loop exposes both to the
    same background load, so the ``trace_overhead`` ratio measures the
    recorder, not whatever else the host was doing during one of two
    separated timing windows.  Returns ``(plain best seconds, its run,
    traced best seconds, the traced best's recorder)``.
    """
    best_plain, best_run = float("inf"), None
    best_traced, best_rec = float("inf"), None
    for _ in range(repeats):
        program = make_prog()
        engine = BSPEngine(backend=BACKENDS.create(backend_name))
        t0 = time.perf_counter()
        run = engine.run(dgraph, program)
        elapsed = time.perf_counter() - t0
        if elapsed < best_plain:
            best_plain, best_run = elapsed, run

        program = make_prog()
        rec = TraceRecorder(label=f"bench:{backend_name}")
        engine = BSPEngine(backend=BACKENDS.create(backend_name), recorder=rec)
        t0 = time.perf_counter()
        engine.run(dgraph, program)
        elapsed = time.perf_counter() - t0
        if elapsed < best_traced:
            best_traced, best_rec = elapsed, rec
    return best_plain, best_run, best_traced, best_rec


def _summarize_recorder(rec):
    """summarize_trace over in-memory spans (no file round-trip needed)."""
    origin = rec.origin_ns
    events = [
        {
            "name": s.name, "cat": s.cat, "worker": s.worker,
            "superstep": s.superstep,
            "ts_us": (s.t0_ns - origin) / 1000.0,
            "dur_us": (s.t1_ns - s.t0_ns) / 1000.0,
            "args": s.args or {},
        }
        for s in rec.spans()
    ]
    trace = {
        "format": "chrome",
        "meta": {"label": rec.label, "num_workers": rec.num_workers()},
        "events": events,
        "metrics": rec.metrics.snapshot(),
    }
    return summarize_trace(trace)


def _wire_walls(rec):
    """Sum the socket backend's ``wire.*`` span walls, in seconds.

    Groups by the span name's second token: ``collect`` (worker-side
    outbox serialization, summed across workers), ``send``/``recv``
    (coordinator frame I/O) and ``state`` (pull/push_state — the
    explicit per-superstep pulls only traced runs perform).  Returns
    ``{}`` for backends that never touch a wire.
    """
    walls = {}
    for span in rec.spans():
        if span.cat != "wire":
            continue
        kind = span.name.split(".")[1]
        if kind in ("pull_state", "push_state"):
            kind = "state"
        walls[kind] = walls.get(kind, 0.0) + (span.t1_ns - span.t0_ns) / 1e9
    return {k: walls[k] for k in sorted(walls)}


def run_config(name, gen_kwargs, p, repeats, pagerank_iters, backends,
               trace=False):
    graph = generate_graph(**gen_kwargs)
    result = DBHPartitioner().partition(graph, p)
    dgraph = build_distributed_graph(result)

    apps = {
        "pagerank": lambda: make_program("PR", graph, pagerank_iters=pagerank_iters),
        "cc": lambda: make_program("CC", graph),
    }

    record = {
        "config": name,
        "graph": {
            "kind": gen_kwargs["kind"],
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        },
        "partitioner": DBHPartitioner.name,
        "num_parts": p,
        "replication_factor": dgraph.replication_factor(),
        "apps": {},
    }

    for app in APPS_UNDER_TEST:
        per_backend = {}
        for backend_name in backends:
            if trace:
                total_s, run, traced_s, rec = _time_paired(
                    backend_name, dgraph, apps[app], repeats
                )
            else:
                engine = BSPEngine(backend=BACKENDS.create(backend_name))
                total_s, run = _time_run(engine, dgraph, apps[app], repeats)
            stages = run.real_stage_seconds()
            compute_s = stages.get("compute", 0.0)
            exchange_s = stages.get("exchange", 0.0)
            per_backend[backend_name] = {
                "total_s": total_s,
                "supersteps": run.num_supersteps,
                "stage_s": {
                    "compute": compute_s,
                    "exchange": exchange_s,
                    # pool/session startup, initial-value allocation and
                    # the final gather — everything outside supersteps.
                    "overhead": max(0.0, total_s - compute_s - exchange_s),
                },
                "per_superstep_s": {
                    "compute": compute_s / max(1, run.num_supersteps),
                    "exchange": exchange_s / max(1, run.num_supersteps),
                },
            }
            if trace:
                summary = _summarize_recorder(rec)
                per_backend[backend_name]["trace"] = {
                    "traced_total_s": traced_s,
                    # cost of enabling tracing: traced best / untraced best.
                    "trace_overhead": traced_s / total_s if total_s > 0 else 1.0,
                    "num_spans": len(rec),
                    "straggler_ratio": summary.straggler_ratio,
                    "stage_imbalance": summary.stage_imbalance,
                    "worker_barrier_s": summary.worker_barrier_seconds,
                    "worker_busy_s": summary.worker_busy_seconds(),
                }
                wire_s = _wire_walls(rec)
                if wire_s:  # socket backend: serialize/send breakdown
                    per_backend[backend_name]["trace"]["wire_s"] = wire_s
        serial_total = per_backend["serial"]["total_s"]
        serial_stages = per_backend["serial"]["stage_s"]
        for backend_name in backends:
            entry = per_backend[backend_name]
            entry["speedup_vs_serial"] = (
                serial_total / entry["total_s"] if entry["total_s"] > 0 else float("inf")
            )
            # Both stages run in the workers, so each scales (or fails
            # to) on its own — report them separately.
            entry["stage_speedup_vs_serial"] = {
                stage: (
                    serial_stages[stage] / entry["stage_s"][stage]
                    if entry["stage_s"][stage] > 0
                    else float("inf")
                )
                for stage in ("compute", "exchange")
            }
        record["apps"][app] = per_backend
    return record


def speedup_note(record, app, ncpus, required):
    """Explain why ``app`` missed ``required``× on the process backend."""
    entry = record["apps"][app]["process"]
    serial = record["apps"][app]["serial"]
    p = record["num_parts"]
    if ncpus < 2:
        return (
            f"{record['config']}/{app}: only {ncpus} CPU schedulable on this "
            f"host — neither worker-side stage (compute or exchange) can "
            f"outrun serial on one core (process backend "
            f"{entry['speedup_vs_serial']:.2f}x). Re-run on a >=2-core host "
            f"to measure real scaling."
        )
    # With real cores available, bound the achievable speedup by Amdahl.
    # Both stages run in the workers now, so the whole superstep divides
    # by min(p, ncpus); what stays serial is the process backend's own
    # overhead (pool startup, per-superstep pipe barriers, final gather).
    total = serial["total_s"]
    exchange = serial["stage_s"]["exchange"]
    compute = serial["stage_s"]["compute"]
    overhead = entry["stage_s"]["overhead"]
    parallel_wall = (compute + exchange) / min(p, ncpus)
    bound = total / (parallel_wall + overhead) if total > 0 else 1.0
    stage_speedups = entry["stage_speedup_vs_serial"]
    slowest_stage = min(("compute", "exchange"), key=lambda s: stage_speedups[s])
    limiter = (
        "session startup/teardown and barrier overhead"
        if overhead >= parallel_wall
        else f"the {slowest_stage} stage "
        f"({stage_speedups[slowest_stage]:.2f}x vs serial)"
    )
    return (
        f"{record['config']}/{app}: process backend reached "
        f"{entry['speedup_vs_serial']:.2f}x (< {required:.2f}x); limiting "
        f"factor is {limiter} (serial walls: compute {compute:.3f}s, "
        f"exchange {exchange:.3f}s; stage speedups: "
        f"compute {stage_speedups['compute']:.2f}x, "
        f"exchange {stage_speedups['exchange']:.2f}x; Amdahl bound at "
        f"p={p} on {ncpus} CPUs is {bound:.2f}x)."
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small graphs for CI smoke runs (seconds, not minutes)",
    )
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "out" / "BENCH_runtime.json",
        help="output JSON path (default: benchmarks/out/BENCH_runtime.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per (app, backend) pair (best-of)",
    )
    parser.add_argument(
        "--pagerank-iters", type=int, default=10,
        help="PageRank iterations for the BSP runs",
    )
    parser.add_argument(
        "--backend", action="append", dest="backends", choices=KNOWN_BACKENDS,
        metavar="NAME", default=None,
        help="backend to time (repeatable; choices: %(choices)s). Replaces "
        "the default set {serial,thread,process}; 'serial' is always kept "
        "as the reference. '--backend socket' times the multi-node TCP "
        "backend on spawned localhost workers.",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="run one extra traced best-of pass per (app, backend) and add "
        "trace overhead + load-balance stats (straggler ratio, per-stage "
        "imbalance, barrier seconds) to the report",
    )
    parser.add_argument(
        "--check-overhead", type=float, default=None, metavar="PCT",
        help="with --trace: exit 1 if the aggregate tracing overhead (sum of "
        "traced bests / sum of untraced bests across all entries) exceeds "
        "PCT percent",
    )
    parser.add_argument(
        "--check-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless the process backend is >= X times faster than "
        "serial on PageRank for every config AND its exchange stage is no "
        "slower than serial's (skipped, with a documented note, when <2 "
        "CPUs are schedulable)",
    )
    args = parser.parse_args(argv)

    ncpus = cpus_available()
    configs = QUICK_CONFIGS if args.quick else FULL_CONFIGS
    if args.backends is None:
        backends = list(DEFAULT_BACKENDS)
    else:
        # serial stays in as the speedup reference; keep request order.
        backends = ["serial"] + [
            b for b in dict.fromkeys(args.backends) if b != "serial"
        ]
    records = []
    notes = []
    threshold = args.check_speedup if args.check_speedup is not None else 1.5
    for name, gen_kwargs, p in configs:
        rec = run_config(
            name, gen_kwargs, p, args.repeats, args.pagerank_iters, backends,
            trace=args.trace,
        )
        records.append(rec)
        for app in APPS_UNDER_TEST:
            row = rec["apps"][app]
            line = " ".join(
                f"{b}={row[b]['total_s']:.3f}s({row[b]['speedup_vs_serial']:.2f}x)"
                for b in backends
            )
            print(
                f"{name:20s} {app:8s} p={rec['num_parts']:<3d} "
                f"supersteps={row['serial']['supersteps']:<3d} {line}"
            )
            if args.trace:
                trace_line = " ".join(
                    f"{b}=+{100 * (row[b]['trace']['trace_overhead'] - 1):.1f}%"
                    for b in backends
                )
                parallel = [b for b in backends if b != "serial"]
                straggler = (
                    f"  straggler({parallel[-1]})="
                    f"{row[parallel[-1]]['trace']['straggler_ratio']:.3f}"
                    if parallel
                    else ""
                )
                print(f"{'':20s} {'':8s} trace overhead {trace_line}{straggler}")
                for b in parallel:
                    wire_s = row[b].get("trace", {}).get("wire_s")
                    if wire_s:
                        wire_line = " ".join(
                            f"{k}={v:.3f}s" for k, v in wire_s.items()
                        )
                        print(f"{'':20s} {'':8s} wire walls ({b}) {wire_line}")
            if (
                "process" in backends
                and row["process"]["speedup_vs_serial"] < threshold
            ):
                notes.append(speedup_note(rec, app, ncpus, threshold))

    payload = {
        "benchmark": "bench_runtime",
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus_available": ncpus,
        "apps": list(APPS_UNDER_TEST),
        "backends": list(backends),
        "speedup_notes": notes,
        "results": records,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")
    for note in notes:
        print(f"note: {note}")

    if args.check_overhead is not None:
        if not args.trace:
            print("--check-overhead requires --trace", file=sys.stderr)
            return 1
        # Gate on the aggregate ratio — sum of traced bests over sum of
        # untraced bests across every (config, app, backend) entry.
        # Individual entries are millisecond-scale runs whose wall-clock
        # ratio swings +/-10% with host load even interleaved; the
        # aggregate pools ~12 entries (dominated by the longer process-
        # backend runs) and is what the <= N% acceptance actually means:
        # tracing must not make the benchmark suite materially slower.
        plain_total = sum(
            r["apps"][app][b]["total_s"]
            for r in records for app in APPS_UNDER_TEST for b in backends
        )
        traced_total = sum(
            r["apps"][app][b]["trace"]["traced_total_s"]
            for r in records for app in APPS_UNDER_TEST for b in backends
        )
        aggregate = traced_total / plain_total if plain_total > 0 else 1.0
        payload["trace_overhead_aggregate"] = aggregate
        args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        if aggregate > 1.0 + args.check_overhead / 100.0:
            print(
                f"FAIL: aggregate tracing overhead "
                f"+{100 * (aggregate - 1):.1f}% across "
                f"{len(records) * len(APPS_UNDER_TEST) * len(backends)} "
                f"entries (limit +{args.check_overhead:.1f}%)",
                file=sys.stderr,
            )
            return 1
        print(
            f"overhead check passed: aggregate +{100 * (aggregate - 1):.1f}% "
            f"(limit +{args.check_overhead:.1f}%)"
        )

    if args.check_speedup is not None:
        if "process" not in backends:
            print(
                "--check-speedup gates the process backend, which is not in "
                "the selected --backend set",
                file=sys.stderr,
            )
            return 1
        if ncpus < 2:
            print(
                f"speedup check skipped: {ncpus} CPU schedulable; see "
                f"speedup_notes in {args.out.name} for the documented limit"
            )
            return 0
        failures = []
        for r in records:
            entry = r["apps"]["pagerank"]["process"]
            if entry["speedup_vs_serial"] < args.check_speedup:
                failures.append(
                    f"FAIL: {r['config']} process backend only "
                    f"{entry['speedup_vs_serial']:.2f}x vs serial "
                    f"(required {args.check_speedup:.2f}x)"
                )
            # The exchange stage runs in the workers; on a multi-core
            # host it must at least keep pace with the serial exchange,
            # or the two-stage parallelism is not actually scaling.
            exchange_x = entry["stage_speedup_vs_serial"]["exchange"]
            if exchange_x < 1.0:
                failures.append(
                    f"FAIL: {r['config']} process-backend exchange stage "
                    f"only {exchange_x:.2f}x vs serial exchange "
                    f"(required >= 1.00x)"
                )
        if failures:
            for line in failures:
                print(line, file=sys.stderr)
            return 1
        print(
            f"speedup check passed (>= {args.check_speedup:.2f}x end-to-end "
            f"and exchange stage >= 1.00x everywhere)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
