"""Bench F3 — regenerate Figure 3 (CC/SSSP on the non-power-law road graph).

Expected shape: the local-based algorithms (NE, METIS) close the gap or
win outright on the road graph — the paper's point that EBV's advantage
is specific to skewed degree distributions.
"""

from repro.experiments import run_fig3

LOCAL_BASED = ("NE", "METIS")
SELF_BASED = ("EBV", "Ginger", "DBH", "CVC")


def test_fig3(benchmark, config, artifact_sink):
    panels, text = benchmark.pedantic(
        lambda: run_fig3(config), rounds=1, iterations=1
    )
    artifact_sink("fig3_road_time", text)

    cc_panel = panels[("CC", "usa-road")]
    # On the road graph the best local-based beats the worst self-based
    # at every worker count (METIS/NE produce tiny message counts there).
    for i in range(len(config.figure_workers["usa-road"])):
        best_local = min(cc_panel[m][i] for m in LOCAL_BASED)
        worst_self = max(cc_panel[m][i] for m in SELF_BASED)
        assert best_local < worst_self
