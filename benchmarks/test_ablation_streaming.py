"""Bench A4 — streaming/distributed EBV vs the offline algorithm.

The paper's future-work directions, quantified: how much replication
does one-pass streaming (with online degree estimates) or sharded
execution (with stale state between syncs) cost relative to offline
EBV-sort?
"""

from repro.analysis import render_table
from repro.partition import (
    EBVPartitioner,
    ShardedEBVPartitioner,
    StreamingEBVPartitioner,
    partition_metrics,
)


def test_ablation_streaming(benchmark, config, artifact_sink):
    graph = config.graphs()["twitter"]
    p = 16

    def sweep():
        rows = []
        variants = [
            ("EBV offline", EBVPartitioner()),
            ("EBV offline unsort", EBVPartitioner(sort_order="input")),
            ("EBV stream w=1", StreamingEBVPartitioner(chunk_size=1)),
            ("EBV stream w=256", StreamingEBVPartitioner(chunk_size=256)),
            ("EBV stream w=4096", StreamingEBVPartitioner(chunk_size=4096)),
            ("EBV sharded k=4 s=64", ShardedEBVPartitioner(4, sync_interval=64)),
            ("EBV sharded k=4 s=4096", ShardedEBVPartitioner(4, sync_interval=4096)),
        ]
        for label, partitioner in variants:
            m = partition_metrics(partitioner.partition(graph, p))
            rows.append((label, f"{m.replication:.3f}", f"{m.edge_imbalance:.3f}",
                         f"{m.vertex_imbalance:.3f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["Variant", "RF", "EdgeImb", "VertImb"],
        rows,
        title=f"Ablation A4 — streaming/sharded EBV (twitter stand-in, p={p})",
    )
    artifact_sink("ablation_streaming", text)

    rf = {label: float(r) for label, r, _, _ in rows}
    # Offline sorted EBV is the floor; every online variant pays a
    # premium but stays within 1.6x.
    floor = rf["EBV offline"]
    assert all(v >= floor - 0.02 for v in rf.values())
    assert max(rf.values()) < 1.6 * floor
