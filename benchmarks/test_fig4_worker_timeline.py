"""Bench F4 — regenerate Figure 4 (per-worker Gantt of CC with 4 workers)."""

from repro.experiments import run_breakdown


def test_fig4(benchmark, config, artifact_sink):
    rows, runs, _, timeline_text = benchmark.pedantic(
        lambda: run_breakdown(config), rounds=1, iterations=1
    )
    artifact_sink("fig4_worker_timeline", timeline_text)

    # Every partitioner's lane set is present with 4 worker lanes.
    for method in ("EBV", "Ginger", "DBH", "CVC", "NE", "METIS"):
        assert method in timeline_text
    assert timeline_text.count("worker 0") == 6
