"""Bench A2 — evaluation-function weight sweep (alpha = beta grid)."""

from repro.experiments import run_alpha_beta_ablation


def test_ablation_alpha_beta(benchmark, config, artifact_sink):
    rows, text = benchmark.pedantic(
        lambda: run_alpha_beta_ablation(config), rounds=1, iterations=1
    )
    artifact_sink("ablation_alpha_beta", text)

    # Replication never decreases as the balance weights grow.
    reps = [r["replication"] for r in rows]
    assert all(b >= a - 0.05 for a, b in zip(reps, reps[1:]))
    # And the heaviest weights keep the partition essentially perfect.
    assert rows[-1]["edge_imbalance"] < 1.1
    assert rows[-1]["vertex_imbalance"] < 1.1
