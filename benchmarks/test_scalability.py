"""Bench A7 — partitioning-cost scaling in |E| and p.

EBV's cost is O(|E|·p) (one evaluation-function scan per edge): this
bench measures wall time across graph sizes and part counts and checks
the growth is at most mildly super-linear, i.e. the implementation has
no hidden quadratic term — the property that lets the paper call EBV
"highly scalable".
"""

import time

from repro.analysis import render_table
from repro.graph import powerlaw_graph
from repro.partition import EBVPartitioner


def test_scaling_in_edges(benchmark, artifact_sink):
    sizes = (1_000, 2_000, 4_000, 8_000)

    def sweep():
        rows = []
        for n in sizes:
            g = powerlaw_graph(n, eta=2.1, min_degree=4, seed=1)
            t0 = time.perf_counter()
            EBVPartitioner().partition(g, 8)
            dt = time.perf_counter() - t0
            rows.append((n, g.num_edges, dt))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["V", "E", "seconds"],
        [(n, m, f"{dt:.3f}") for n, m, dt in rows],
        title="Ablation A7 — EBV partition time vs graph size (p=8)",
    )
    artifact_sink("scalability_edges", text)

    # Time per edge must stay within 4x of the smallest size's rate
    # (linear-ish scaling; generous bound for interpreter noise).
    rates = [dt / m for _, m, dt in rows]
    assert max(rates) < 4 * max(min(rates), 1e-9)


def test_scaling_in_parts(benchmark, artifact_sink):
    g = powerlaw_graph(4_000, eta=2.1, min_degree=4, seed=2)
    parts = (2, 4, 8, 16, 32)

    def sweep():
        rows = []
        for p in parts:
            t0 = time.perf_counter()
            EBVPartitioner().partition(g, p)
            rows.append((p, time.perf_counter() - t0))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["p", "seconds"],
        [(p, f"{dt:.3f}") for p, dt in rows],
        title=f"Ablation A7 — EBV partition time vs p (|E|={g.num_edges})",
    )
    artifact_sink("scalability_parts", text)

    times = dict(rows)
    # Doubling p from 2 to 32 must not blow past the O(E·p) envelope by
    # much: per-edge work is one p-length argmin, so a 16x p increase
    # should cost well under 16x wall time (numpy amortizes the scan).
    assert times[32] < 16 * max(times[2], 1e-9)
