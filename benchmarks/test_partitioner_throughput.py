"""Micro-benchmarks: raw partitioning throughput of each algorithm.

Not a paper artifact, but the practical datum a downstream user wants:
edges/second for each partitioner at a fixed (graph, p).  These use
pytest-benchmark's statistical machinery (multiple rounds) since each
call is fast and side-effect free.
"""

import pytest

from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    MetisLikePartitioner,
    NEPartitioner,
)

PARTITIONERS = {
    "EBV": EBVPartitioner,
    "Ginger": GingerPartitioner,
    "DBH": DBHPartitioner,
    "CVC": CVCPartitioner,
    "NE": NEPartitioner,
    "METIS": MetisLikePartitioner,
}


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
def test_partition_throughput(benchmark, config, name):
    graph = config.graphs()["livejournal"]
    partitioner = PARTITIONERS[name]()
    result = benchmark(partitioner.partition, graph, 8)
    # Vertex-cut results partition E exactly; edge-cut (METIS) replicates
    # cross edges, so its per-part totals exceed |E|.
    if result.kind == "vertex-cut":
        assert int(result.edge_counts().sum()) == graph.num_edges
    else:
        assert int(result.edge_counts().sum()) >= graph.num_edges
    benchmark.extra_info["edges"] = graph.num_edges
    benchmark.extra_info["edges_per_sec"] = graph.num_edges / benchmark.stats["mean"]
