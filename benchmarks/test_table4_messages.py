"""Bench T4 — regenerate Table IV (total CC communication messages)."""

POWER_LAW = ("livejournal", "friendster", "twitter")


def test_table4(benchmark, tables345_data, artifact_sink):
    data, _, t4, _ = benchmark.pedantic(
        lambda: tables345_data, rounds=1, iterations=1
    )
    artifact_sink("table4_messages", t4)

    # EBV sends fewer messages than the other self-based partitioners on
    # every graph (paper: 23.7-35.4% fewer than Ginger).
    for graph in POWER_LAW + ("usa-road",):
        ebv = data.messages[(graph, "EBV")].total_messages
        for other in ("Ginger", "DBH", "CVC"):
            assert ebv < data.messages[(graph, other)].total_messages, (graph, other)
    # Local-based methods lead by a large margin on the road graph.
    road_ebv = data.messages[("usa-road", "EBV")].total_messages
    assert data.messages[("usa-road", "METIS")].total_messages < road_ebv / 2
    assert data.messages[("usa-road", "NE")].total_messages < road_ebv / 2
