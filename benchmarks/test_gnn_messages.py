"""Bench A6 — the proposed GNN application: feature-propagation messages.

Section VII proposes applying EBV to distributed GNNs.  This bench runs
the communication-bound GNN kernel (K-hop feature aggregation) under
each partitioner and reports message totals — partition quality mapped
directly onto GNN communication volume.
"""

import numpy as np

from repro.analysis import render_table
from repro.apps import FeaturePropagation
from repro.bsp import BSPEngine, build_distributed_graph
from repro.partition import (
    CVCPartitioner,
    DBHPartitioner,
    EBVPartitioner,
    GingerPartitioner,
    NEPartitioner,
)


def test_gnn_feature_propagation_messages(benchmark, config, artifact_sink):
    graph = config.graphs()["twitter"]
    p = 16
    features = np.random.default_rng(0).normal(size=(graph.num_vertices, 8))

    def sweep():
        engine = BSPEngine()
        rows = []
        for cls in (EBVPartitioner, GingerPartitioner, DBHPartitioner,
                    CVCPartitioner, NEPartitioner):
            result = cls().partition(graph, p)
            dg = build_distributed_graph(result)
            run = engine.run(dg, FeaturePropagation(features, hops=3))
            rows.append((result.method, run.total_messages,
                         f"{run.message_max_mean_ratio:.3f}",
                         f"{run.execution_time:.4f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ["Method", "Messages (3 hops)", "max/mean", "time (s)"],
        rows,
        title=f"Ablation A6 — GNN feature propagation (twitter stand-in, p={p})",
    )
    artifact_sink("gnn_messages", text)

    msgs = {method: m for method, m, _, _ in rows}
    # The paper's GNN thesis: EBV's replication advantage carries over
    # verbatim to the aggregation messages of distributed GNNs.
    for other in ("Ginger", "DBH", "CVC"):
        assert msgs["EBV"] < msgs[other]
