"""Bench T1 — regenerate Table I (graph statistics)."""

from repro.experiments import run_table1


def test_table1(benchmark, config, artifact_sink):
    rows, text = benchmark.pedantic(
        lambda: run_table1(config), rounds=1, iterations=1
    )
    artifact_sink("table1_graph_stats", text)
    assert len(rows) == 4
    eta = {r.name: r.eta for r in rows}
    # The paper's eta ordering: USARoad >> LiveJournal > Twitter.
    assert eta["usa-road"] > eta["livejournal"] > eta["twitter"]
